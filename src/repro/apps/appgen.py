"""Synthetic telematics-app generator.

Emits MiniJimple apps shaped like the decompiled Android apps of §4.6:
response-processing methods that read a hex string from the OBD dongle,
check its prefix, extract integer fields with ``Integer.parseInt(s, 16)``
and combine them with arithmetic before display (Fig. 9's pattern).

Three app flavours:

* **formula apps** — N guarded formula blocks (the extractor should find
  exactly N formulas);
* **complex apps** — the response is read in one method and processed in
  another, defeating intraprocedural taint analysis (the paper's 13
  "cannot be extracted" apps);
* **DTC apps** — read/clear trouble codes only; responses are displayed
  without any math (most of the 160-app corpus).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from .ir import (
    App,
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    CondExpr,
    DISPLAY_SIG,
    DoubleConst,
    GotoStmt,
    IfStmt,
    IntConst,
    InvokeExpr,
    LabelStmt,
    Local,
    Method,
    PARSE_INT_SIG,
    REPLACE_SIG,
    ReturnStmt,
    SPLIT_SIG,
    STARTSWITH_SIG,
    Statement,
    StringConst,
    TRIM_SIG,
)

RESULT_API = "<com.obd.lib.ObdCommand: java.lang.String getResult()>"


@dataclass(frozen=True)
class FormulaSpec:
    """One response-processing formula to embed.

    ``kind`` ∈ {"affine1", "affine2", "prod"}:

    * affine1: ``a*v0 + b``
    * affine2: ``a0*v0 + a1*v1 + b``
    * prod:    ``v0 * v1 * c``
    """

    prefix: str  # response prefix guarding the block, e.g. "41 0C"
    kind: str
    coefficients: Tuple[float, ...]

    @property
    def n_variables(self) -> int:
        return 1 if self.kind == "affine1" else 2


class _MethodBuilder:
    """Tiny helper accumulating SSA statements."""

    def __init__(self, name: str) -> None:
        self.method = Method(name)
        self._counter = 0
        self._labels = 0

    def local(self, prefix: str = "$t") -> Local:
        self._counter += 1
        return Local(f"{prefix}{self._counter}")

    def label(self) -> str:
        self._labels += 1
        return f"label{self._labels}"

    def emit(self, statement: Statement) -> None:
        self.method.statements.append(statement)

    def assign(self, expr) -> Local:
        target = self.local()
        self.emit(AssignStmt(target, expr))
        return target


def _request_for_prefix(prefix: str) -> str:
    """The request message whose response carries ``prefix``.

    Positive-response SIDs are request SID + 0x40 in every protocol here:
    ``41 0C`` was asked by ``01 0C``, ``62 F4 00`` by ``22 F4 00``,
    ``61 07`` by ``21 07``.
    """
    parts = prefix.split(" ")
    sid = int(parts[0], 16)
    return " ".join([f"{sid - 0x40:02X}"] + parts[1:])


def _emit_formula_block(builder: _MethodBuilder, response: Local, spec: FormulaSpec) -> None:
    """Emit ``send(request); if (response.startsWith(prefix)) { ... }``."""
    from .ir import SEND_COMMAND_SIG

    builder.emit(
        AssignStmt(
            builder.local("$s"),
            InvokeExpr(
                Local("$cmd"), SEND_COMMAND_SIG,
                (StringConst(_request_for_prefix(spec.prefix)),),
            ),
        )
    )
    flag = builder.assign(
        InvokeExpr(response, STARTSWITH_SIG, (StringConst(spec.prefix),))
    )
    skip = builder.label()
    builder.emit(IfStmt(CondExpr("==", flag, IntConst(0)), skip))

    stripped = builder.assign(
        InvokeExpr(response, REPLACE_SIG, (StringConst(spec.prefix), StringConst("")))
    )
    trimmed = builder.assign(InvokeExpr(stripped, TRIM_SIG, ()))
    parts = builder.assign(InvokeExpr(trimmed, SPLIT_SIG, (StringConst(" "),)))

    raw_vars: List[Local] = []
    for index in range(spec.n_variables):
        element = builder.assign(ArrayRef(parts, index))
        parsed = builder.assign(
            InvokeExpr(None, PARSE_INT_SIG, (element, IntConst(16)))
        )
        raw_vars.append(builder.assign(CastExpr("double", parsed)))

    if spec.kind == "affine1":
        a, b = spec.coefficients
        scaled = builder.assign(BinopExpr("*", DoubleConst(a), raw_vars[0]))
        result = builder.assign(BinopExpr("+", scaled, DoubleConst(b)))
    elif spec.kind == "affine2":
        a0, a1, b = spec.coefficients
        term0 = builder.assign(BinopExpr("*", DoubleConst(a0), raw_vars[0]))
        term1 = builder.assign(BinopExpr("*", raw_vars[1], DoubleConst(a1)))
        partial = builder.assign(BinopExpr("+", term1, term0))
        result = builder.assign(BinopExpr("+", partial, DoubleConst(b)))
    elif spec.kind == "prod":
        (c,) = spec.coefficients
        product = builder.assign(BinopExpr("*", raw_vars[0], raw_vars[1]))
        result = builder.assign(BinopExpr("*", product, DoubleConst(c)))
    else:
        raise ValueError(f"unknown formula kind {spec.kind!r}")

    builder.emit(AssignStmt(builder.local("$v"), InvokeExpr(Local("$tv"), DISPLAY_SIG, (result,))))
    builder.emit(LabelStmt(skip))


def make_formula_app(
    name: str, specs: Sequence[FormulaSpec], blocks_per_method: int = 25
) -> App:
    """An app embedding exactly ``len(specs)`` extractable formulas."""
    app = App(name)
    for chunk_start in range(0, len(specs), blocks_per_method):
        chunk = specs[chunk_start : chunk_start + blocks_per_method]
        builder = _MethodBuilder(f"processResponse{chunk_start // blocks_per_method}")
        response = builder.assign(InvokeExpr(Local("$cmd"), RESULT_API, ()))
        for spec in chunk:
            _emit_formula_block(builder, response, spec)
        builder.emit(ReturnStmt())
        app.methods.append(builder.method)
    return app


def make_complex_app(name: str, specs: Sequence[FormulaSpec]) -> App:
    """Formulas split across methods: read in one, compute in another.

    Intraprocedural taint analysis cannot connect the two, so the
    extractor finds nothing — the paper's "request message is sent by
    subclass and the response message is parsed by the parent class"
    failure mode.
    """
    app = App(name)
    reader = _MethodBuilder("readResponse")
    response = reader.assign(InvokeExpr(Local("$cmd"), RESULT_API, ()))
    reader.emit(ReturnStmt(response))
    app.methods.append(reader.method)

    for index, spec in enumerate(specs):
        builder = _MethodBuilder(f"computeValue{index}")
        # The response arrives as an (untainted) parameter.
        parameter = Local("$param0")
        _emit_formula_block(builder, parameter, spec)
        builder.emit(ReturnStmt())
        app.methods.append(builder.method)
    return app


def make_reflection_app(name: str, specs: Sequence[FormulaSpec]) -> App:
    """The response arrives through ``Method.invoke`` (reflection).

    The reflective call's signature is not in the taint-source list — the
    real analyses have the same blind spot — so nothing is extracted.
    """
    from .ir import REFLECT_INVOKE_SIG

    app = App(name)
    builder = _MethodBuilder("processReflected")
    response = builder.assign(
        InvokeExpr(Local("$method"), REFLECT_INVOKE_SIG, (Local("$cmd"),))
    )
    for spec in specs:
        _emit_formula_block(builder, response, spec)
    builder.emit(ReturnStmt())
    app.methods.append(builder.method)
    return app


def make_substring_condition_app(name: str, specs: Sequence[FormulaSpec]) -> App:
    """Conditions check ``substring(...).equals(...)`` instead of startsWith.

    The paper's other stated failure: "the app only checks partial bytes of
    response messages to determine the used formula" — the formula body is
    still reachable through taint, but the *condition* (and with it the
    protocol attribution) cannot be recovered by the startsWith matcher.
    """
    from .ir import EQUALS_SIG, SUBSTRING_SIG

    app = App(name)
    builder = _MethodBuilder("processPartialCheck")
    response = builder.assign(InvokeExpr(Local("$cmd"), RESULT_API, ()))
    for spec in specs:
        head = builder.assign(
            InvokeExpr(response, SUBSTRING_SIG, (IntConst(0), IntConst(len(spec.prefix))))
        )
        flag = builder.assign(
            InvokeExpr(head, EQUALS_SIG, (StringConst(spec.prefix),))
        )
        skip = builder.label()
        builder.emit(IfStmt(CondExpr("==", flag, IntConst(0)), skip))
        stripped = builder.assign(
            InvokeExpr(response, REPLACE_SIG, (StringConst(spec.prefix), StringConst("")))
        )
        trimmed = builder.assign(InvokeExpr(stripped, TRIM_SIG, ()))
        parts = builder.assign(InvokeExpr(trimmed, SPLIT_SIG, (StringConst(" "),)))
        element = builder.assign(ArrayRef(parts, 0))
        parsed = builder.assign(InvokeExpr(None, PARSE_INT_SIG, (element, IntConst(16))))
        value = builder.assign(CastExpr("double", parsed))
        scaled = builder.assign(BinopExpr("*", DoubleConst(spec.coefficients[0]), value))
        builder.emit(
            AssignStmt(builder.local("$v"), InvokeExpr(Local("$tv"), DISPLAY_SIG, (scaled,)))
        )
        builder.emit(LabelStmt(skip))
    builder.emit(ReturnStmt())
    app.methods.append(builder.method)
    return app


def make_dtc_app(name: str, n_codes: int = 4) -> App:
    """A read/clear-trouble-codes app: response handling without math."""
    app = App(name)
    builder = _MethodBuilder("readTroubleCodes")
    response = builder.assign(InvokeExpr(Local("$cmd"), RESULT_API, ()))
    for index in range(n_codes):
        flag = builder.assign(
            InvokeExpr(response, STARTSWITH_SIG, (StringConst(f"43 {index:02X}"),))
        )
        skip = builder.label()
        builder.emit(IfStmt(CondExpr("==", flag, IntConst(0)), skip))
        text = builder.assign(InvokeExpr(response, TRIM_SIG, ()))
        builder.emit(
            AssignStmt(builder.local("$v"), InvokeExpr(Local("$tv"), DISPLAY_SIG, (text,)))
        )
        builder.emit(LabelStmt(skip))
    builder.emit(ReturnStmt())
    app.methods.append(builder.method)
    return app


# --------------------------------------------------------------- spec pools


def obd2_spec_pool(rng: random.Random, count: int) -> List[FormulaSpec]:
    """Formula specs with OBD-II mode-01 response prefixes (``41 PID``)."""
    specs: List[FormulaSpec] = []
    pid = 0x04
    for __ in range(count):
        prefix = f"41 {pid:02X}"
        specs.append(_random_spec(rng, prefix))
        pid = pid + 1 if pid < 0xA6 else 0x04
    return specs


def uds_spec_pool(rng: random.Random, count: int) -> List[FormulaSpec]:
    """Specs with UDS ReadDataByIdentifier prefixes (``62 DID``)."""
    specs: List[FormulaSpec] = []
    did = 0xF400
    for __ in range(count):
        prefix = f"62 {did >> 8:02X} {did & 0xFF:02X}"
        specs.append(_random_spec(rng, prefix))
        did += 1
    return specs


def kwp_spec_pool(rng: random.Random, count: int) -> List[FormulaSpec]:
    """Specs with KWP readDataByLocalIdentifier prefixes (``61 LID``)."""
    specs: List[FormulaSpec] = []
    local_id = 0x01
    for index in range(count):
        prefix = f"61 {local_id:02X}"
        specs.append(_random_spec(rng, prefix))
        if index % 3 == 2:
            local_id = (local_id % 0xFE) + 1
    return specs


def _random_spec(rng: random.Random, prefix: str) -> FormulaSpec:
    roll = rng.random()
    if roll < 0.5:
        return FormulaSpec(
            prefix,
            "affine1",
            (round(rng.choice([0.1, 0.25, 0.392, 0.5, 1.0, 2.0]), 4), float(rng.choice([-40, 0, 0, 32]))),
        )
    if roll < 0.8:
        return FormulaSpec(
            prefix,
            "affine2",
            (float(rng.choice([64, 256, 2.56])), round(rng.choice([0.25, 0.01, 1.0]), 4), 0.0),
        )
    return FormulaSpec(prefix, "prod", (round(rng.choice([0.2, 0.01, 0.002]), 4),))
