"""CANHunter-style request extraction (the §4.6/Q6 comparison target).

CANHunter (Wen et al., NDSS 2020) force-executes telematics apps to collect
every request message they can emit.  Over MiniJimple the equivalent is a
whole-program sweep for ``sendCommand`` call sites, collecting the constant
request strings regardless of reachability — exactly what forced execution
achieves on real bytecode, without reverse engineering the requests or the
response processing (the limitation the paper stresses).

:func:`compare_with_tool` then reproduces the paper's Q6 comparison: which
of a vehicle's identifiers can the app-derived requests actually reach,
versus what a professional diagnostic tool exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from .ir import App, AssignStmt, InvokeExpr, SEND_COMMAND_SIG, StringConst


@dataclass(frozen=True)
class ExtractedRequest:
    """One request message an app can send."""

    app_name: str
    message: str  # hex string, e.g. "01 0C"

    @property
    def service_id(self) -> int:
        return int(self.message.split(" ")[0], 16)

    @property
    def protocol(self) -> str:
        sid = self.service_id
        if sid <= 0x0A:
            return "OBD-II"
        if sid in (0x22, 0x2E, 0x2F, 0x19, 0x14, 0x10, 0x11, 0x27, 0x31, 0x3E):
            return "UDS"
        if sid in (0x21, 0x30, 0x18, 0x1A):
            return "KWP 2000"
        return "unknown"


def extract_requests(app: App) -> List[ExtractedRequest]:
    """Collect every constant request the app can transmit."""
    requests: List[ExtractedRequest] = []
    seen: Set[str] = set()
    for method in app.methods:
        for statement in method.statements:
            if not isinstance(statement, AssignStmt):
                continue
            expr = statement.expr
            if (
                isinstance(expr, InvokeExpr)
                and expr.signature == SEND_COMMAND_SIG
                and expr.args
                and isinstance(expr.args[0], StringConst)
            ):
                message = expr.args[0].value
                if message not in seen:
                    seen.add(message)
                    requests.append(ExtractedRequest(app.name, message))
    return requests


def extract_corpus_requests(apps: Sequence[App]) -> Dict[str, List[ExtractedRequest]]:
    """Request messages per app, CANHunter style."""
    return {app.name: extract_requests(app) for app in apps}


@dataclass
class CoverageComparison:
    """Q6's tool-vs-app coverage numbers for one vehicle."""

    vehicle: str
    tool_esvs: int  # proprietary ESVs the professional tool reads
    app_reachable_esvs: int  # of those, reachable with app-derived requests
    app_obd_esvs: int  # legislated OBD-II values the app *can* read
    tool_ecus: int
    app_reachable_ecus: int
    app_requests_tried: int


def compare_with_tool(vehicle, requests: Sequence[ExtractedRequest]) -> CoverageComparison:
    """Replay app-derived requests against a vehicle; count what they reach.

    A request "reaches" an ESV when the ECU answers it positively — i.e.
    the app could actually read that value.  Professional-tool coverage is
    the vehicle's full data-point inventory (which the Tab. 6 pipeline
    demonstrably reads).
    """
    from ..diagnostics.messages import is_negative_response

    tool_esvs = 0
    tool_ecus = 0
    reachable: Set[str] = set()
    reachable_ecus: Set[str] = set()
    for ecu in vehicle.ecus:
        n_points = len(ecu.uds_data_points) + sum(
            len(g.measurements) for g in ecu.kwp_groups.values()
        )
        tool_esvs += n_points
        if n_points:
            tool_ecus += 1

    payloads = []
    for request in requests:
        try:
            payloads.append(bytes.fromhex(request.message.replace(" ", "")))
        except ValueError:
            continue

    obd_reachable: Set[str] = set()
    for ecu in vehicle.ecus:
        endpoint = vehicle.tester_endpoint(ecu.name, tester="canhunter")
        for payload in payloads:
            endpoint.send(payload)
            response = endpoint.receive()
            if response is None or is_negative_response(response):
                continue
            if response[0] == 0x41 and payload[1] not in (0x00, 0x20, 0x40, 0x60):
                # Legislated OBD-II data: apps read these (the paper's
                # "ordinary information"), but they are not the
                # proprietary surface.
                obd_reachable.add(f"{payload.hex()}")
            elif response[0] in (0x62, 0x61):
                reachable.add(f"{ecu.name}:{payload.hex()}")
                reachable_ecus.add(ecu.name)
        vehicle.release_tester(endpoint)

    return CoverageComparison(
        vehicle=vehicle.model,
        tool_esvs=tool_esvs,
        app_reachable_esvs=len(reachable),
        app_obd_esvs=len(obd_reachable),
        tool_ecus=tool_ecus,
        app_reachable_ecus=len(reachable_ecus),
        app_requests_tried=len(payloads),
    )
