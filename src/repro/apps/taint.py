"""Forward taint analysis over MiniJimple (the engine behind Alg. 1).

Taint seeds are locals assigned from response-reading framework APIs
(``InputStream.read``, ``ObdCommand.getResult``, ...).  Propagation is the
standard assignment-based forward flow over the SSA-style statement list:

* assigning a tainted expression taints the target;
* an invoke expression is tainted when its receiver or any argument is;
* binops, casts and array references propagate from their operands.

Because the corpus generator emits SSA locals, a single linear pass
suffices (no fix-point needed); the analysis is intraprocedural, which is
exactly why the paper's 13 "complex" apps (response read in one method,
processed in another) defeat it — our corpus reproduces that failure mode.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from .ir import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    CondExpr,
    Expr,
    IfStmt,
    InvokeExpr,
    Local,
    Method,
    RESPONSE_READ_APIS,
    Statement,
    Value,
)


def _values_of(expr: Expr) -> List[Value]:
    """Immediate operand values of an expression."""
    if isinstance(expr, InvokeExpr):
        values: List[Value] = list(expr.args)
        if expr.receiver is not None:
            values.append(expr.receiver)
        return values
    if isinstance(expr, BinopExpr):
        return [expr.left, expr.right]
    if isinstance(expr, CastExpr):
        return [expr.value]
    if isinstance(expr, ArrayRef):
        return [expr.base]
    return [expr]


def _is_source(expr: Expr) -> bool:
    return isinstance(expr, InvokeExpr) and expr.signature in RESPONSE_READ_APIS


def taint_method(method: Method) -> Tuple[Set[str], List[int]]:
    """Run forward taint over one method.

    Returns ``(tainted_local_names, tainted_statement_indices)`` where a
    statement is tainted when it defines or uses a tainted local (these are
    Alg. 1's *ProcStmts*).
    """
    tainted: Set[str] = set()
    tainted_statements: List[int] = []
    for index, statement in enumerate(method.statements):
        uses_taint = False
        if isinstance(statement, AssignStmt):
            if _is_source(statement.expr):
                tainted.add(statement.target.name)
                tainted_statements.append(index)
                continue
            operands = _values_of(statement.expr)
            uses_taint = any(
                isinstance(v, Local) and v.name in tainted for v in operands
            )
            if uses_taint:
                tainted.add(statement.target.name)
        elif isinstance(statement, IfStmt):
            cond = statement.cond
            uses_taint = any(
                isinstance(v, Local) and v.name in tainted
                for v in (cond.left, cond.right)
            )
        if uses_taint:
            tainted_statements.append(index)
    return tainted, tainted_statements


def data_dependencies(method: Method, index: int) -> List[int]:
    """Backward slice: statement indices the given statement depends on.

    Follows def-use chains transitively.  The slice stops *at* statements
    that extract integers from the response (``Integer.parseInt``), which
    become the formula's variables — exactly where the paper stops
    (Fig. 9's lines 7 and 9).
    """
    from .ir import PARSE_INT_SIG

    defs = {}
    for i, statement in enumerate(method.statements):
        if isinstance(statement, AssignStmt):
            defs[statement.target.name] = i

    slice_indices: List[int] = []
    worklist = [index]
    seen = {index}
    while worklist:
        current = worklist.pop()
        slice_indices.append(current)
        statement = method.statements[current]
        if not isinstance(statement, AssignStmt):
            continue
        if (
            isinstance(statement.expr, InvokeExpr)
            and statement.expr.signature == PARSE_INT_SIG
        ):
            continue  # variable boundary: stop the slice here
        for value in _values_of(statement.expr):
            if isinstance(value, Local):
                def_index = defs.get(value.name)
                if def_index is not None and def_index not in seen:
                    seen.add(def_index)
                    worklist.append(def_index)
    return sorted(slice_indices)


def control_dependencies(method: Method, index: int) -> List[int]:
    """Indices of ``IfStmt`` statements guarding the given statement.

    MiniJimple lowers ``if (c) { block }`` to ``if !c goto L; block; L:``,
    so a statement is control dependent on every earlier IfStmt whose
    skip label appears after it.
    """
    from .ir import LabelStmt

    labels = {
        statement.name: i
        for i, statement in enumerate(method.statements)
        if isinstance(statement, LabelStmt)
    }
    guards: List[int] = []
    for i, statement in enumerate(method.statements[:index]):
        if isinstance(statement, IfStmt):
            label_index = labels.get(statement.target)
            if label_index is not None and label_index > index:
                guards.append(i)
    return guards
