"""MiniJimple — a small three-address IR for telematics-app analysis.

The paper's §4.6 / §9.2 analysis runs on Soot's Jimple representation of
Android apps (Fig. 9 shows real Jimple).  Our synthetic corpus is expressed
in the same shape: SSA-style locals, one operation per statement, invoke
expressions carrying full method signatures, and structured conditionals
lowered to ``if <cond> goto <label>`` + labels.

Statement forms:

* ``AssignStmt(target, expr)`` — ``$d0 = 64.0 * $d1``
* ``IfStmt(cond, target_label)`` — branch *around* the guarded block when
  the condition is false (Jimple's inverted-goto lowering)
* ``LabelStmt(name)`` / ``GotoStmt(label)``
* ``ReturnStmt(value)``

Expression forms: constants, locals, binary operations, casts, array
references and invoke expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ----------------------------------------------------------------- values


@dataclass(frozen=True)
class Local:
    """An SSA-style local variable, e.g. ``$r7_18``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class StringConst:
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class IntConst:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class DoubleConst:
    value: float

    def __str__(self) -> str:
        return f"{self.value:g}"


Constant = Union[StringConst, IntConst, DoubleConst]
Value = Union[Local, StringConst, IntConst, DoubleConst]


# ------------------------------------------------------------- expressions


@dataclass(frozen=True)
class InvokeExpr:
    """``virtualinvoke $r7.<java.lang.String: boolean startsWith(...)>(...)``"""

    receiver: Optional[Value]  # None for static invokes
    signature: str  # full Soot-style signature
    args: Tuple[Value, ...] = ()

    @property
    def method_name(self) -> str:
        # "<java.lang.Integer: int parseInt(java.lang.String,int)>" -> parseInt
        inner = self.signature.strip("<>")
        after_type = inner.split(" ", 2)[-1]
        return after_type.split("(")[0]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        if self.receiver is None:
            return f"staticinvoke {self.signature}({args})"
        return f"virtualinvoke {self.receiver}.{self.signature}({args})"


@dataclass(frozen=True)
class BinopExpr:
    """``$d0_1 = 64.0 * $d0``"""

    op: str  # "+", "-", "*", "/"
    left: Value
    right: Value

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class CastExpr:
    """``$d0 = (double) $i2_3``"""

    to_type: str
    value: Value

    def __str__(self) -> str:
        return f"({self.to_type}) {self.value}"


@dataclass(frozen=True)
class ArrayRef:
    """``$r7_21 = $r9[0]``"""

    base: Value
    index: int

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class CondExpr:
    """A branch condition, e.g. ``$z0_17 == 0``."""

    op: str  # "==", "!=", "<", ">"
    left: Value
    right: Value

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Expr = Union[InvokeExpr, BinopExpr, CastExpr, ArrayRef, Value]


# -------------------------------------------------------------- statements


@dataclass(frozen=True)
class AssignStmt:
    target: Local
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class IfStmt:
    """``if $z0 == 0 goto labelN`` — skips the guarded block when false."""

    cond: CondExpr
    target: str

    def __str__(self) -> str:
        return f"if {self.cond} goto {self.target}"


@dataclass(frozen=True)
class GotoStmt:
    target: str

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True)
class LabelStmt:
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class ReturnStmt:
    value: Optional[Value] = None

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


Statement = Union[AssignStmt, IfStmt, GotoStmt, LabelStmt, ReturnStmt]


# ------------------------------------------------------------------ method


@dataclass
class Method:
    """One method body: a flat statement list (Jimple style)."""

    name: str
    statements: List[Statement] = field(default_factory=list)

    def listing(self) -> str:
        return "\n".join(f"{i:3d}  {s}" for i, s in enumerate(self.statements))


@dataclass
class App:
    """One analysed telematics app."""

    name: str
    methods: List[Method] = field(default_factory=list)

    def method(self, name: str) -> Method:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(name)

    def statement_count(self) -> int:
        return sum(len(m.statements) for m in self.methods)


# ---------------------------------------------------------- API signatures

#: Framework APIs that read response messages (taint sources, Alg. 1).
RESPONSE_READ_APIS: Tuple[str, ...] = (
    "<java.io.InputStream: int read(byte[])>",
    "<java.io.BufferedReader: java.lang.String readLine()>",
    "<android.bluetooth.BluetoothSocket: java.io.InputStream getInputStream()>",
    "<com.obd.lib.ObdCommand: java.lang.String getResult()>",
)

PARSE_INT_SIG = "<java.lang.Integer: int parseInt(java.lang.String,int)>"
STARTSWITH_SIG = "<java.lang.String: boolean startsWith(java.lang.String)>"
REPLACE_SIG = (
    "<java.lang.String: java.lang.String replace"
    "(java.lang.CharSequence,java.lang.CharSequence)>"
)
TRIM_SIG = "<java.lang.String: java.lang.String trim()>"
SPLIT_SIG = "<java.lang.String: java.lang.String[] split(java.lang.String)>"
SUBSTRING_SIG = "<java.lang.String: java.lang.String substring(int,int)>"
EQUALS_SIG = "<java.lang.String: boolean equals(java.lang.Object)>"
REFLECT_INVOKE_SIG = (
    "<java.lang.reflect.Method: java.lang.Object invoke"
    "(java.lang.Object,java.lang.Object[])>"
)
DISPLAY_SIG = "<android.widget.TextView: void setText(java.lang.CharSequence)>"
SEND_COMMAND_SIG = "<com.obd.lib.ObdCommand: void sendCommand(java.lang.String)>"
