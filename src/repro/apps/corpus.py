"""The 160-telematics-app corpus of Tab. 12.

Composition follows §4.6: 38 apps "downloaded from Google Play" plus the
122 apps of the CANHunter dataset, of which

* 3 contain UDS / KWP 2000 formulas (the Carly family),
* the apps listed in Tab. 12 contain OBD-II formulas (with the table's
  per-app counts),
* 13 embed formulas the intraprocedural analysis cannot extract
  (cross-method read/processing),
* the remainder only read/clear DTCs or freeze frames — no formulas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .appgen import (
    FormulaSpec,
    kwp_spec_pool,
    make_complex_app,
    make_dtc_app,
    make_formula_app,
    make_reflection_app,
    make_substring_condition_app,
    obd2_spec_pool,
    uds_spec_pool,
)
from .extractor import ExtractedAppFormula, FormulaExtractor
from .ir import App

TOTAL_APPS = 160

#: Tab. 12 rows: app name -> {protocol: formula count}.
TABLE12_FORMULA_APPS: Dict[str, Dict[str, int]] = {
    "Carly for VAG": {"UDS": 90, "KWP 2000": 137},
    "Carly for Mercedes": {"UDS": 1624, "KWP 2000": 468},
    "Carly for Toyota": {"KWP 2000": 7},
    "inCarDoc": {"OBD-II": 82},
    "Car Computer - Olivia Drive": {"OBD-II": 74},
    "CarSys Scan": {"OBD-II": 64},
    "Easy OBD": {"OBD-II": 55},
    "inCarDoc Pro": {"OBD-II": 49},
    "OBD Boy(OBD2-ELM327)": {"OBD-II": 45},
    "FordSys Scan Free": {"OBD-II": 42},
    "ChevroSys Scan Free": {"OBD-II": 40},
    "ToyoSys Scan Free": {"OBD-II": 40},
    "Obd Mary": {"OBD-II": 34},
    "OBD2 Boost": {"OBD-II": 34},
    "Obd Harry Scan": {"OBD-II": 28},
    "Obd Arny": {"OBD-II": 27},
    "MOSX": {"OBD-II": 24},
    "Dr Prius Dr Hybrid": {"OBD-II": 22},
    "Dacar Pro OBD2": {"OBD-II": 21},
    "OBD2 Scanner Fault Codes Desc": {"OBD-II": 16},
    "Dacar Pro OBD2 (2)": {"OBD-II": 14},
    "Engie Easy Car Repair": {"OBD-II": 8},
    "PHEV Watchdog": {"OBD-II": 8},
    "Torque Lite(OBD2&Car)": {"OBD-II": 5},
    "Kiwi OBD": {"OBD-II": 3},
    "OBDclick": {"OBD-II": 2},
    "Dr Prius Dr Hybrid (2)": {"OBD-II": 1},
    "Fuel Economy for Torque Pro": {"OBD-II": 1},
}

#: The paper's 13 formulas-present-but-unextractable apps, split by cause:
#: cross-method data flow, reflective reads, partial-byte conditions.
N_CROSS_METHOD_APPS = 8
N_REFLECTION_APPS = 2
N_PARTIAL_CHECK_APPS = 3
N_COMPLEX_APPS = N_CROSS_METHOD_APPS + N_REFLECTION_APPS + N_PARTIAL_CHECK_APPS


def build_corpus(seed: int = 2022) -> List[App]:
    """Generate all 160 apps, deterministically."""
    rng = random.Random(seed)
    apps: List[App] = []
    for name, counts in TABLE12_FORMULA_APPS.items():
        specs: List[FormulaSpec] = []
        specs.extend(uds_spec_pool(rng, counts.get("UDS", 0)))
        specs.extend(kwp_spec_pool(rng, counts.get("KWP 2000", 0)))
        specs.extend(obd2_spec_pool(rng, counts.get("OBD-II", 0)))
        apps.append(make_formula_app(name, specs))
    for index in range(N_CROSS_METHOD_APPS):
        specs = obd2_spec_pool(rng, rng.randint(4, 12))
        apps.append(make_complex_app(f"Complex OBD Tool #{index + 1}", specs))
    for index in range(N_REFLECTION_APPS):
        specs = obd2_spec_pool(rng, rng.randint(3, 8))
        apps.append(make_reflection_app(f"Reflective Reader #{index + 1}", specs))
    for index in range(N_PARTIAL_CHECK_APPS):
        specs = obd2_spec_pool(rng, rng.randint(3, 8))
        apps.append(
            make_substring_condition_app(f"Partial Check Tool #{index + 1}", specs)
        )
    while len(apps) < TOTAL_APPS:
        apps.append(make_dtc_app(f"DTC Reader #{len(apps) + 1}", rng.randint(2, 6)))
    return apps


@dataclass
class CorpusAnalysis:
    """Result of running the extractor over the whole corpus."""

    per_app: Dict[str, Dict[str, int]]  # app -> protocol -> formula count
    formulas: List[ExtractedAppFormula]

    def apps_with(self, protocol: str) -> List[str]:
        return [
            name
            for name, counts in self.per_app.items()
            if counts.get(protocol, 0) > 0
        ]

    def total_formulas(self) -> int:
        return len(self.formulas)


def analyze_corpus(apps: List[App]) -> CorpusAnalysis:
    """Run Alg. 1 over every app and aggregate per-protocol counts."""
    extractor = FormulaExtractor()
    per_app: Dict[str, Dict[str, int]] = {}
    all_formulas: List[ExtractedAppFormula] = []
    for app in apps:
        formulas = extractor.extract(app)
        counts: Dict[str, int] = {}
        for formula in formulas:
            counts[formula.protocol] = counts.get(formula.protocol, 0) + 1
        per_app[app.name] = counts
        all_formulas.extend(formulas)
    return CorpusAnalysis(per_app, all_formulas)
