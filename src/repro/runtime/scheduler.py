"""Fleet scheduler: fan jobs out over a worker pool, retry, checkpoint.

Three interchangeable execution backends:

``process``
    :class:`concurrent.futures.ProcessPoolExecutor` — the default for real
    fleet sweeps.  Formula inference is CPU-bound Python, so processes are
    the only backend that actually scales with cores.
``thread``
    :class:`concurrent.futures.ThreadPoolExecutor` — useful when the
    runner is monkeypatched (tests) or I/O-bound.
``serial``
    A plain in-process loop, used by determinism tests and as the
    always-works fallback.  Serial execution cannot preempt a running job,
    so per-job timeouts are only enforced by the pool backends.

Retry policy lives in the parent, not the workers: a failed attempt is
re-submitted after an exponential backoff (``backoff_base_s *
backoff_factor**(attempt-1)``), bounded by ``max_retries``.  Every
decision is emitted to the :class:`~repro.runtime.events.EventLog` and
counted in the :class:`~repro.runtime.metrics.MetricsRegistry`; completed
results are written to the :class:`~repro.runtime.checkpoint.CheckpointStore`
the moment they finish, so a killed run resumes without redoing them.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..observability.trace import NULL_TRACER, Tracer
from .checkpoint import CheckpointStore
from .events import EventLog
from .job import JobResult, JobSpec, run_job
from .metrics import MetricsRegistry
from .report import RunReport

POOL_KINDS = ("serial", "thread", "process")

#: The per-process runner installed by :func:`_process_worker_init`.
#: Module-level because :class:`ProcessPoolExecutor` only ships
#: module-level callables to workers.
_WORKER_RUNNER: Optional[Callable[[JobSpec], JobResult]] = None


def _process_worker_init(runner: Callable[[JobSpec], JobResult]) -> None:
    """Set up one pool worker: install the runner, warm the hot paths.

    Runs once per worker process, so each job submission afterwards ships
    only its lean :class:`JobSpec` — the runner is never re-pickled per
    submit — and the first job in every worker no longer pays the lazy
    imports and compiled-tree table initialisation that :func:`run_job`
    would otherwise trigger (visible as first-job latency under ``spawn``
    start methods, where workers do not inherit the parent's modules).
    """
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner
    from ..core.gp import prime_instruction_tables

    # Touch the modules run_job imports lazily inside the worker.
    from .. import cps, tools, vehicle  # noqa: F401

    prime_instruction_tables()


def _invoke_worker_runner(spec: JobSpec) -> JobResult:
    """Process-pool submit target: run ``spec`` on the installed runner."""
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    return _WORKER_RUNNER(spec)


def _generic_worker_init() -> None:
    """Warm one pool worker for arbitrary submissions (no fixed runner)."""
    from ..core.gp import prime_instruction_tables

    from .. import cps, tools, vehicle  # noqa: F401

    prime_instruction_tables()


class _ImmediateFuture(Future):
    """A future resolved inline — the serial backend's submit result."""

    def __init__(self, fn, args, kwargs) -> None:
        super().__init__()
        try:
            self.set_result(fn(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 — carried in the future
            self.set_exception(error)


class WorkerPool:
    """A persistent, warmed worker pool with a submit-anything lifecycle.

    :class:`Scheduler` owns its executor for the duration of one batch;
    long-lived services (the streaming diagnostic server in
    :mod:`repro.service`) need the same warmed backends but submit work one
    call at a time for as long as the process lives.  ``kind`` is one of
    :data:`POOL_KINDS`; ``serial`` executes inline (deterministic tests,
    zero threads), ``thread`` keeps the caller's event loop free while the
    GIL-bound parts stay in-process, and ``process`` ships picklable
    callables to workers pre-warmed exactly like the scheduler's
    (instruction tables primed, heavy modules imported).
    """

    def __init__(self, kind: str = "thread", workers: int = 1) -> None:
        if kind not in POOL_KINDS:
            raise ValueError(f"unknown pool kind {kind!r}; expected one of {POOL_KINDS}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.kind = kind
        self.workers = workers
        self._executor = None
        if kind == "thread":
            self._executor = ThreadPoolExecutor(max_workers=workers)
        elif kind == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=workers, initializer=_generic_worker_init
            )

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``; returns its future."""
        if self._executor is None:
            return _ImmediateFuture(fn, args, kwargs)
        return self._executor.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.shutdown()
        return False


@dataclass
class SchedulerConfig:
    """Execution policy for one fleet run."""

    workers: int = 1
    pool: str = "serial"
    max_retries: int = 2  # extra attempts after the first
    timeout_s: Optional[float] = None  # per-attempt wall budget (pool modes)
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    #: Keep the executor alive across :meth:`Scheduler.run` calls instead
    #: of building and tearing down a pool per batch.  Repeated sweeps
    #: (benchmark sizings, the streaming service's periodic re-runs) then
    #: pay process spawn and worker warm-up once per scheduler lifetime —
    #: the same long-lived-worker model the island GP backend uses.  Call
    #: :meth:`Scheduler.close` (or use the scheduler as a context manager)
    #: when done; timed-out attempts left running can occupy a persistent
    #: worker until they finish, exactly as they occupy an abandoned pool.
    persistent_pool: bool = False

    def __post_init__(self) -> None:
        if self.pool not in POOL_KINDS:
            raise ValueError(f"unknown pool kind {self.pool!r}; expected one of {POOL_KINDS}")
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative: {self.max_retries}")

    def backoff_s(self, attempt: int) -> float:
        """Delay before the retry that follows failed attempt ``attempt``."""
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


class Scheduler:
    """Runs a batch of :class:`JobSpec`\\ s to a :class:`RunReport`."""

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        checkpoint: Optional[CheckpointStore] = None,
        events: Optional[EventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        runner: Callable[[JobSpec], JobResult] = run_job,
        sleep: Callable[[float], None] = time.sleep,
        perf: Callable[[], float] = time.perf_counter,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config or SchedulerConfig()
        self.checkpoint = checkpoint
        self.events = events if events is not None else EventLog()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.runner = runner
        self.sleep = sleep
        self.perf = perf
        #: Run-level tracer; per-job span payloads riding back in
        #: :attr:`JobResult.spans` are grafted into it as they finish, one
        #: Chrome-trace "thread" lane per car.
        self.tracer = tracer or NULL_TRACER
        self._trace_lanes: Dict[str, int] = {}
        self._executor = None  # persistent-pool executor, kept across runs
        self._submit_target: Optional[Callable] = None

    def close(self) -> None:
        """Shut down a persistent pool (no-op otherwise)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._submit_target = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ run

    def run(self, specs: Sequence[JobSpec]) -> RunReport:
        specs = list(specs)
        ids = [spec.job_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in fleet run")

        start = self.perf()
        self.events.emit(
            "run_started",
            n_jobs=len(specs),
            pool=self.config.pool,
            workers=self.config.workers,
        )
        with self.tracer.span(
            "fleet_run",
            n_jobs=len(specs),
            pool=self.config.pool,
            workers=self.config.workers,
        ):
            return self._run(specs, start)

    def _run(self, specs: List[JobSpec], start: float) -> RunReport:

        results: Dict[str, JobResult] = {}
        skipped: List[str] = []
        pending_specs: List[JobSpec] = []
        if self.checkpoint is not None:
            cached = self.checkpoint.load_all()
            for spec in specs:
                prior = cached.get(spec.job_id)
                if prior is not None and prior.ok:
                    results[spec.job_id] = prior
                    skipped.append(spec.job_id)
                    self.metrics.counter("jobs_skipped").inc()
                    self.events.emit(
                        "job_skipped", job_id=spec.job_id, car_key=spec.car_key
                    )
                else:
                    pending_specs.append(spec)
        else:
            pending_specs = specs

        if self.config.pool == "serial":
            for spec in pending_specs:
                results[spec.job_id] = self._run_serial(spec)
        else:
            results.update(self._run_pool(pending_specs))

        wall = self.perf() - start
        n_ok = sum(1 for result in results.values() if result.ok)
        self.events.emit(
            "run_finished",
            n_ok=n_ok,
            n_failed=len(results) - n_ok,
            n_skipped=len(skipped),
            wall_seconds=round(wall, 6),
        )
        return RunReport(
            results=list(results.values()),
            skipped=skipped,
            pool=self.config.pool,
            workers=self.config.workers,
            wall_seconds=wall,
            metrics=self.metrics.to_dict(),
        )

    # --------------------------------------------------------------- serial

    def _run_serial(self, spec: JobSpec) -> JobResult:
        attempt = 0
        while True:
            attempt += 1
            self.events.emit("job_started", job_id=spec.job_id, attempt=attempt)
            attempt_start = self.perf()
            try:
                result = self.runner(spec)
            except Exception as error:  # noqa: BLE001 — isolate per-job faults
                wall = self.perf() - attempt_start
                if self._maybe_retry(spec, attempt, error):
                    continue
                return self._finalize(
                    JobResult(
                        job_id=spec.job_id,
                        car_key=spec.car_key,
                        status="failed",
                        attempts=attempt,
                        wall_seconds=wall,
                        error=repr(error),
                    )
                )
            result.attempts = attempt
            return self._finalize(result)

    # ----------------------------------------------------------------- pool

    def _build_executor(self) -> Tuple[object, Callable]:
        if self.config.pool == "thread":
            return ThreadPoolExecutor(max_workers=self.config.workers), self.runner
        # Persistent warmed workers: the runner crosses the process
        # boundary once (at pool start), and each submission afterwards
        # pickles only the JobSpec.
        executor = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_process_worker_init,
            initargs=(self.runner,),
        )
        return executor, _invoke_worker_runner

    def _run_pool(self, specs: Sequence[JobSpec]) -> Dict[str, JobResult]:
        if self._executor is not None and getattr(self._executor, "_broken", False):
            self.close()  # a crashed persistent pool is rebuilt transparently
        if self._executor is None:
            self._executor, self._submit_target = self._build_executor()
        executor, submit_target = self._executor, self._submit_target
        results: Dict[str, JobResult] = {}
        pending: Dict[Future, Tuple[JobSpec, int, float]] = {}

        def submit(spec: JobSpec, attempt: int) -> None:
            self.events.emit("job_started", job_id=spec.job_id, attempt=attempt)
            pending[executor.submit(submit_target, spec)] = (spec, attempt, self.perf())

        try:
            for spec in specs:
                submit(spec, 1)
            while pending:
                slack = None
                if self.config.timeout_s is not None:
                    now = self.perf()
                    slack = max(
                        0.0,
                        min(
                            t0 + self.config.timeout_s - now
                            for (__, __, t0) in pending.values()
                        ),
                    )
                done, __ = wait(list(pending), timeout=slack, return_when=FIRST_COMPLETED)
                for future in done:
                    spec, attempt, t0 = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        result = future.result()
                        result.attempts = attempt
                        results[spec.job_id] = self._finalize(result)
                    elif self._maybe_retry(spec, attempt, error):
                        submit(spec, attempt + 1)
                    else:
                        results[spec.job_id] = self._finalize(
                            JobResult(
                                job_id=spec.job_id,
                                car_key=spec.car_key,
                                status="failed",
                                attempts=attempt,
                                wall_seconds=self.perf() - t0,
                                error=repr(error),
                            )
                        )
                if self.config.timeout_s is None:
                    continue
                now = self.perf()
                for future, (spec, attempt, t0) in list(pending.items()):
                    if now - t0 < self.config.timeout_s:
                        continue
                    # A future past its deadline is cancelled if still
                    # queued and abandoned if already running (threads and
                    # processes cannot be preempted safely).
                    future.cancel()
                    pending.pop(future)
                    self.metrics.counter("attempts_timed_out").inc()
                    self.events.emit(
                        "job_timeout",
                        job_id=spec.job_id,
                        attempt=attempt,
                        timeout_s=self.config.timeout_s,
                    )
                    if self._maybe_retry(spec, attempt, None):
                        submit(spec, attempt + 1)
                    else:
                        results[spec.job_id] = self._finalize(
                            JobResult(
                                job_id=spec.job_id,
                                car_key=spec.car_key,
                                status="timeout",
                                attempts=attempt,
                                wall_seconds=now - t0,
                                error=f"timed out after {self.config.timeout_s} s",
                            )
                        )
        finally:
            if not self.config.persistent_pool:
                # Don't block on abandoned (timed-out) workers.
                executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
                self._submit_target = None
        return results

    # -------------------------------------------------------------- helpers

    def _maybe_retry(
        self, spec: JobSpec, attempt: int, error: Optional[BaseException]
    ) -> bool:
        """Record a failed attempt; True if the job should be retried."""
        will_retry = attempt <= self.config.max_retries
        if error is not None:
            self.metrics.counter("attempts_failed").inc()
            self.events.emit(
                "job_attempt_failed",
                job_id=spec.job_id,
                attempt=attempt,
                error=repr(error),
                will_retry=will_retry,
            )
        if not will_retry:
            return False
        delay = self.config.backoff_s(attempt)
        self.metrics.counter("jobs_retried").inc()
        self.events.emit(
            "job_retry", job_id=spec.job_id, attempt=attempt + 1, delay_s=round(delay, 6)
        )
        self.sleep(delay)
        return True

    def _finalize(self, result: JobResult) -> JobResult:
        if result.ok:
            self.metrics.counter("jobs_completed").inc()
            self.metrics.histogram("job_wall_seconds").observe(result.wall_seconds)
            for stage, seconds in result.stage_seconds.items():
                self.metrics.histogram(f"stage.{stage}_seconds").observe(seconds)
            for stage, samples in result.stage_samples.items():
                # Per-call distributions only add information for stages
                # that fire more than once per job (per-formula GP timing);
                # for the rest they would just duplicate the totals above.
                if len(samples) > 1:
                    self.metrics.histogram(f"stage.{stage}_call_seconds").extend(samples)
            for name, value in result.transport_counts.items():
                # Fleet-wide capture-quality counters (transport.errors,
                # transport.resyncs, ...): summed across jobs so a sweep's
                # report shows how much of every capture survived decoding.
                if value:
                    self.metrics.counter(f"transport.{name}").inc(value)
            if result.spans and self.tracer.enabled:
                # Graft the job's span tree into the run tracer, one trace
                # lane ("thread") per car so Perfetto shows the fleet as
                # parallel swimlanes under the fleet_run root.
                parent = self.tracer.current()
                lane = self._trace_lanes.setdefault(
                    result.car_key, len(self._trace_lanes) + 1
                )
                self.tracer.absorb(
                    result.spans,
                    parent_id=parent.span_id if parent else None,
                    tid=lane,
                )
            if self.checkpoint is not None:
                self.checkpoint.record(result)
        elif result.status == "timeout":
            self.metrics.counter("jobs_timeout").inc()
        else:
            self.metrics.counter("jobs_failed").inc()
        self.events.emit(
            "job_finished",
            job_id=result.job_id,
            status=result.status,
            attempts=result.attempts,
            wall_seconds=round(result.wall_seconds, 6),
        )
        return result
