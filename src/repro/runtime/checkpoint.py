"""Checkpoint store: completed job results as JSON, one file per job.

Layered on :mod:`repro.persistence`'s atomic-JSON helpers, so a fleet run
killed mid-write never leaves a torn checkpoint behind.  On resume the
scheduler asks :meth:`CheckpointStore.completed_ids` which jobs are already
done and skips them; everything else re-runs.  Only successful results are
recorded — failures and timeouts must re-run on resume by design.

Files are named ``job-<job_id>.json`` and carry their own format version,
validated on read with the same clear-:class:`ValueError` convention as
capture loading.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Set, Union

from ..persistence import read_json, write_json_atomic
from .job import JobResult

CHECKPOINT_FORMAT_VERSION = 1
_PREFIX = "job-"


class CheckpointStore:
    """Directory of completed :class:`~repro.runtime.job.JobResult`\\ s."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        return self.directory / f"{_PREFIX}{job_id}.json"

    def record(self, result: JobResult) -> Path:
        """Persist a successful result; failures are not checkpointed."""
        if not result.ok:
            raise ValueError(
                f"refusing to checkpoint job {result.job_id} with "
                f"status {result.status!r} (only 'ok' results resume)"
            )
        return write_json_atomic(
            self._path(result.job_id),
            {"format_version": CHECKPOINT_FORMAT_VERSION, "result": result.to_dict()},
        )

    def load(self, job_id: str) -> Optional[JobResult]:
        path = self._path(job_id)
        if not path.exists():
            return None
        payload = read_json(path)
        if not isinstance(payload, dict) or "result" not in payload:
            raise ValueError(f"malformed checkpoint file {path}")
        version = payload.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version!r} in {path} "
                f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
            )
        return JobResult.from_dict(payload["result"])

    def load_all(self) -> Dict[str, JobResult]:
        results: Dict[str, JobResult] = {}
        for path in sorted(self.directory.glob(f"{_PREFIX}*.json")):
            job_id = path.stem[len(_PREFIX):]
            result = self.load(job_id)
            if result is not None:
                results[job_id] = result
        return results

    def completed_ids(self) -> Set[str]:
        return {job_id for job_id, result in self.load_all().items() if result.ok}
