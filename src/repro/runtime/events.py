"""JSONL event log for fleet runs.

Every scheduler decision — scheduling, skips on resume, attempts, retries,
timeouts, completions — is one JSON object per line, so an interrupted run
leaves an audit trail that survives the process and streams cleanly into
log tooling.  Schema (documented in DESIGN.md):

``seq``
    Monotonic sequence number within the run (0-based).  The total order,
    even if the clock is coarse or simulated.
``t``
    Timestamp from the injected clock (wall seconds by default,
    :meth:`repro.simtime.SimClock.perf` under simulation).
``event``
    Event kind, e.g. ``run_started``, ``job_skipped``, ``job_started``,
    ``job_attempt_failed``, ``job_retry``, ``job_timeout``,
    ``job_finished``, ``run_finished``.

plus event-specific fields (``job_id``, ``attempt``, ``error``, ...).
Lines are flushed per event so a killed run loses at most the event being
written.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, List, Optional, Union


class EventLog:
    """Append-only event stream, in memory and optionally on disk."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.events: List[dict] = []
        self._clock = clock or time.time
        self._handle = None
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Append so a resumed run extends the original trail.
            self._handle = path.open("a")

    def emit(self, event: str, **fields: object) -> dict:
        record = {"seq": len(self.events), "t": round(self._clock(), 6), "event": event}
        record.update(fields)
        self.events.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        return record

    def of_kind(self, event: str) -> List[dict]:
        return [record for record in self.events if record["event"] == event]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[dict]:
    """Parse an ``events.jsonl`` file back into event dicts."""
    records: List[dict] = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records
