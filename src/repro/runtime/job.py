"""Fleet jobs: one vehicle's collect→reverse pipeline as a unit of work.

A :class:`JobSpec` is a frozen, picklable description of one car's run —
everything that determines the outcome (car key, seeds, capture duration,
GP overrides) and nothing that doesn't.  Its :attr:`~JobSpec.job_id` is a
deterministic function of those inputs, which is what makes checkpoint
resume sound: a half-finished fleet sweep restarted with the same
parameters maps onto the same ids and skips the cars already done, while a
sweep restarted with, say, a different seed maps onto fresh ids and redoes
everything.

:func:`run_job` is the worker entry point.  It is a module-level function
(so :class:`concurrent.futures.ProcessPoolExecutor` can pickle it) and is
pure with respect to its spec: the same :class:`JobSpec` always produces
the same ESV/ECR payload, byte for byte, which the scheduler's
serial-vs-parallel equivalence guarantee builds on.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

class InjectedFault(RuntimeError):
    """Fault raised by test/benchmark fault injectors inside a worker."""


@dataclass(frozen=True)
class JobSpec:
    """Deterministic description of one car's collect+reverse run."""

    car_key: str
    seed: int = 2
    read_duration_s: float = 30.0
    ocr_seed: int = 23
    #: Optional :class:`~repro.core.GpConfig` field overrides, as a sorted
    #: tuple of ``(name, value)`` pairs so the spec stays hashable and its
    #: job id stays stable under dict-ordering differences.
    gp_overrides: Tuple[Tuple[str, object], ...] = ()
    #: Real seconds of bus-wait latency to emulate during collection.  On
    #: real hardware the capture rig idles for hours while the tool reads
    #: the live bus; :class:`~repro.simtime.SimClock` compresses that to
    #: nothing, which would make scheduler-scaling benchmarks meaningless.
    #: Setting this re-introduces the wait as wall-clock idle time that
    #: parallel workers overlap.  Does not affect the result payload, so it
    #: is excluded from :attr:`job_id`.
    live_latency_s: float = 0.0
    #: Workers for per-ESV GP inference inside this job (see
    #: :attr:`repro.core.reverser.DPReverser.gp_workers`).  Each ESV's GP
    #: run is independently seeded, so parallelism changes wall-clock only,
    #: never the payload — excluded from :attr:`job_id` like
    #: :attr:`live_latency_s`.
    gp_workers: int = 1
    #: Per-ESV inference backend (``"auto"``/``"serial"``/``"thread"``/
    #: ``"process"``/``"island"``).  Every backend produces byte-identical
    #: payloads, so this is execution policy like :attr:`gp_workers` —
    #: excluded from :attr:`job_id`.
    gp_backend: str = "auto"
    #: Merge same-shape fitness evaluations across this job's ESVs into
    #: single batched matrix passes (see
    #: :class:`~repro.core.gp.BatchEvaluator`).  Byte-identical results,
    #: so execution policy — excluded from :attr:`job_id`.
    gp_batch: bool = False
    #: Directory of the cross-run formula memo store (empty = off).  Memo
    #: hits replay the exact stored result, so the payload is unchanged —
    #: excluded from :attr:`job_id`.
    gp_memo_dir: str = ""
    #: Formula-*inference* backend (``"gp"``/``"linear"``/``"hybrid"`` —
    #: *what solver* recovers each formula), as opposed to
    #: :attr:`gp_backend`, which is *where* GP evaluations run.  Excluded
    #: from :attr:`job_id`: ``hybrid`` recovers the identical ESV set with
    #: mathematically equivalent formulas as pure GP (an invariant the
    #: backend benchmark asserts fleet-wide), so a checkpointed sweep
    #: resumed under a different inference backend legitimately reuses the
    #: finished cars rather than redoing them.
    formula_backend: str = "gp"
    #: Capture-noise profile in :meth:`~repro.can.NoiseProfile.parse` form
    #: (e.g. ``"default"`` or ``"drop=0.02,dup=0.01"``).  Empty string =
    #: clean capture.  Changes the outcome, so it contributes to
    #: :attr:`job_id` — but only when set, keeping clean-run ids (and
    #: checkpoints/digests) identical to the pre-noise format.
    noise_spec: str = ""
    #: Base seed for fault injection; each car derives an independent
    #: stream from it (see :meth:`noise_profile`).
    noise_seed: int = 0
    #: Record a span tree for this job (see :mod:`repro.observability`).
    #: Tracing only observes — the payload is byte-identical either way —
    #: so this is execution policy, excluded from :attr:`job_id` like
    #: :attr:`gp_workers`.
    trace: bool = False

    @property
    def job_id(self) -> str:
        """Stable id derived from every outcome-determining field."""
        blob = (
            f"{self.car_key}|seed={self.seed}|dur={self.read_duration_s:g}"
            f"|ocr={self.ocr_seed}|gp={sorted(self.gp_overrides)!r}"
        )
        if self.noise_spec:
            blob += f"|noise={self.noise_spec}|nseed={self.noise_seed}"
        return f"car-{self.car_key.lower()}-{zlib.crc32(blob.encode()) & 0xFFFFFFFF:08x}"

    def noise_profile(self):
        """The per-car :class:`~repro.can.NoiseProfile`, or ``None``.

        The profile's seed mixes :attr:`noise_seed` with the car key so
        every vehicle in a sweep sees an independent fault stream while the
        whole sweep stays reproducible from one integer.
        """
        if not self.noise_spec:
            return None
        from ..can import NoiseProfile

        derived = (zlib.crc32(self.car_key.encode()) ^ self.noise_seed) & 0x7FFFFFFF
        return NoiseProfile.parse(self.noise_spec, seed=derived)

    def to_dict(self) -> dict:
        return {
            "car_key": self.car_key,
            "seed": self.seed,
            "read_duration_s": self.read_duration_s,
            "ocr_seed": self.ocr_seed,
            "gp_overrides": [list(pair) for pair in self.gp_overrides],
            "live_latency_s": self.live_latency_s,
            "gp_workers": self.gp_workers,
            "gp_backend": self.gp_backend,
            "gp_batch": self.gp_batch,
            "gp_memo_dir": self.gp_memo_dir,
            "formula_backend": self.formula_backend,
            "noise_spec": self.noise_spec,
            "noise_seed": self.noise_seed,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            car_key=payload["car_key"],
            seed=payload["seed"],
            read_duration_s=payload["read_duration_s"],
            ocr_seed=payload["ocr_seed"],
            gp_overrides=tuple(
                (name, value) for name, value in payload.get("gp_overrides", [])
            ),
            live_latency_s=payload.get("live_latency_s", 0.0),
            gp_workers=payload.get("gp_workers", 1),
            gp_backend=payload.get("gp_backend", "auto"),
            gp_batch=payload.get("gp_batch", False),
            gp_memo_dir=payload.get("gp_memo_dir", ""),
            formula_backend=payload.get("formula_backend", "gp"),
            noise_spec=payload.get("noise_spec", ""),
            noise_seed=payload.get("noise_seed", 0),
            trace=payload.get("trace", False),
        )


@dataclass
class JobResult:
    """Outcome of one job, split into deterministic payload and telemetry.

    The ESV/ECR rows and counts depend only on the spec; attempts, stage
    timings and wall-clock are telemetry that varies run to run.  Digest
    comparisons (serial vs parallel, resumed vs fresh) therefore go through
    :meth:`deterministic_payload`, never :meth:`to_dict`.
    """

    job_id: str
    car_key: str
    status: str  # "ok" | "failed" | "timeout"
    attempts: int = 1
    esvs: List[dict] = field(default_factory=list)
    ecrs: List[dict] = field(default_factory=list)
    n_formula_esvs: int = 0
    n_correct: int = 0
    n_enum_esvs: int = 0
    n_ecrs: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Individual samples behind :attr:`stage_seconds` for stages that fire
    #: more than once per job (one ``gp_formula`` sample per inferred ESV).
    #: Telemetry, like the totals: excluded from the deterministic payload.
    stage_samples: Dict[str, List[float]] = field(default_factory=dict)
    wall_seconds: float = 0.0
    error: str = ""
    #: Transport decode accounting for this job's capture (frames decoded,
    #: errors, resyncs, messages lost...).  Telemetry: a clean run reports
    #: zeros that digest comparisons must not depend on, so it is excluded
    #: from :meth:`deterministic_payload` like the timings are.
    transport_counts: Dict[str, int] = field(default_factory=dict)
    #: Exported span records for this job when the spec asked for tracing
    #: (:attr:`JobSpec.trace`); the scheduler grafts them into the run's
    #: tracer.  Telemetry — excluded from :meth:`deterministic_payload`
    #: and serialised only when non-empty, so checkpoints written by
    #: untraced runs are byte-identical to the pre-tracing format.
    spans: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def precision(self) -> float:
        return self.n_correct / self.n_formula_esvs if self.n_formula_esvs else 1.0

    def deterministic_payload(self) -> dict:
        """The spec-determined portion of the result (no timing/attempts)."""
        return {
            "job_id": self.job_id,
            "car_key": self.car_key,
            "status": self.status,
            "esvs": self.esvs,
            "ecrs": self.ecrs,
            "n_formula_esvs": self.n_formula_esvs,
            "n_correct": self.n_correct,
            "n_enum_esvs": self.n_enum_esvs,
            "n_ecrs": self.n_ecrs,
        }

    def to_dict(self) -> dict:
        payload = self.deterministic_payload()
        payload.update(
            {
                "attempts": self.attempts,
                "stage_seconds": {
                    name: round(value, 6)
                    for name, value in sorted(self.stage_seconds.items())
                },
                "stage_samples": {
                    name: [round(value, 6) for value in samples]
                    for name, samples in sorted(self.stage_samples.items())
                },
                "wall_seconds": round(self.wall_seconds, 6),
                "error": self.error,
                "transport_counts": dict(sorted(self.transport_counts.items())),
            }
        )
        if self.spans:
            payload["spans"] = self.spans
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobResult":
        return cls(
            job_id=payload["job_id"],
            car_key=payload["car_key"],
            status=payload["status"],
            attempts=payload.get("attempts", 1),
            esvs=payload.get("esvs", []),
            ecrs=payload.get("ecrs", []),
            n_formula_esvs=payload.get("n_formula_esvs", 0),
            n_correct=payload.get("n_correct", 0),
            n_enum_esvs=payload.get("n_enum_esvs", 0),
            n_ecrs=payload.get("n_ecrs", 0),
            stage_seconds=payload.get("stage_seconds", {}),
            stage_samples=payload.get("stage_samples", {}),
            wall_seconds=payload.get("wall_seconds", 0.0),
            error=payload.get("error", ""),
            transport_counts=payload.get("transport_counts", {}),
            spans=payload.get("spans", []),
        )


def fleet_job_specs(
    keys: Optional[List[str]] = None,
    seed: int = 2,
    read_duration_s: float = 30.0,
    gp_overrides: Tuple[Tuple[str, object], ...] = (),
    gp_workers: int = 1,
    gp_backend: str = "auto",
    gp_batch: bool = False,
    gp_memo_dir: str = "",
    formula_backend: str = "gp",
    noise_spec: str = "",
    noise_seed: int = 0,
    trace: bool = False,
) -> List[JobSpec]:
    """One :class:`JobSpec` per fleet car (all 18 when ``keys`` is None)."""
    from ..vehicle import CAR_SPECS

    keys = [key.upper() for key in (keys or sorted(CAR_SPECS))]
    unknown = [key for key in keys if key not in CAR_SPECS]
    if unknown:
        raise ValueError(f"unknown fleet keys: {', '.join(unknown)}")
    return [
        JobSpec(
            car_key=key,
            seed=seed,
            read_duration_s=read_duration_s,
            gp_overrides=gp_overrides,
            gp_workers=gp_workers,
            gp_backend=gp_backend,
            gp_batch=gp_batch,
            gp_memo_dir=gp_memo_dir,
            formula_backend=formula_backend,
            noise_spec=noise_spec,
            noise_seed=noise_seed,
            trace=trace,
        )
        for key in keys
    ]


def run_job(spec: JobSpec, perf: Optional[Callable[[], float]] = None) -> JobResult:
    """Run one car's full collect→reverse→verify pipeline.

    Deterministic given ``spec``; raises on pipeline errors (the scheduler
    owns retry/timeout policy, not the worker).
    """
    from ..core import DPReverser, GpConfig, ReverserConfig, check_formula
    from ..cps import DataCollector
    from ..observability.trace import NULL_TRACER, Tracer
    from ..tools import make_tool_for_car
    from ..vehicle import build_car, ground_truth_formulas

    perf = perf or time.perf_counter
    start = perf()
    stage_seconds: Dict[str, float] = {}
    stage_samples: Dict[str, List[float]] = {}

    def record_stage(stage: str, elapsed: float) -> None:
        stage_seconds[stage] = stage_seconds.get(stage, 0.0) + elapsed
        stage_samples.setdefault(stage, []).append(elapsed)

    tracer = Tracer(clock=perf) if spec.trace else NULL_TRACER

    # One root span per job: the per-stage spans the reverser opens (and
    # the gp_formula subtrees absorbed from pool workers) all nest under
    # it, so a fleet trace reads as one tree per car.
    with tracer.span("job", car=spec.car_key, job_id=spec.job_id):
        car = build_car(spec.car_key)
        tool = make_tool_for_car(spec.car_key, car)
        collect_start = perf()
        with tracer.span("collect", car=spec.car_key):
            if spec.live_latency_s > 0:
                time.sleep(spec.live_latency_s)
            capture = DataCollector(
                tool, read_duration_s=spec.read_duration_s
            ).collect()
        record_stage("collect", perf() - collect_start)

        reverser = DPReverser(
            ReverserConfig(
                gp_config=GpConfig(seed=spec.seed, **dict(spec.gp_overrides)),
                ocr_seed=spec.ocr_seed,
                stage_hook=record_stage,
                perf=perf,
                gp_workers=spec.gp_workers,
                gp_backend=spec.gp_backend,
                gp_batch=spec.gp_batch,
                gp_memo_dir=spec.gp_memo_dir,
                formula_backend=spec.formula_backend,
                noise=spec.noise_profile(),
                trace=tracer,
            )
        )
        report = reverser.reverse_engineer(capture)

    truth = ground_truth_formulas(car)
    report_dict = report.to_dict()
    esv_rows: List[dict] = []
    n_correct = 0
    for esv, row in zip(report.esvs, report_dict["esvs"]):
        row = dict(row)
        if not esv.is_enum and esv.formula is not None:
            # Under fault injection a corrupted frame can fabricate an
            # identifier with no ground truth; count it as incorrect.
            expected = truth.get(esv.identifier)
            correct = expected is not None and check_formula(
                esv.formula, expected, esv.samples
            )
            n_correct += int(correct)
            row["correct"] = bool(correct)
        esv_rows.append(row)

    transport_counts: Dict[str, int] = {}
    if report.diagnostics is not None:
        transport_counts = report.diagnostics.stats.to_dict()

    return JobResult(
        job_id=spec.job_id,
        car_key=spec.car_key,
        status="ok",
        esvs=esv_rows,
        ecrs=report_dict["ecrs"],
        n_formula_esvs=len(report.formula_esvs),
        n_correct=n_correct,
        n_enum_esvs=len(report.enum_esvs),
        n_ecrs=len(report.ecrs),
        stage_seconds=stage_seconds,
        stage_samples=stage_samples,
        wall_seconds=perf() - start,
        transport_counts=transport_counts,
        spans=tracer.export_payload(),
    )
