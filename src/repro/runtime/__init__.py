"""Fleet-scale job orchestration.

The runtime subsystem turns the per-car collect→reverse pipeline into
schedulable jobs and runs them at fleet scale:

- :mod:`~repro.runtime.job` — :class:`JobSpec`/:class:`JobResult` and the
  picklable :func:`run_job` worker;
- :mod:`~repro.runtime.scheduler` — worker pools (process/thread/serial),
  bounded retries with exponential backoff, per-job timeouts;
- :mod:`~repro.runtime.checkpoint` — completed results persisted as JSON
  so interrupted sweeps resume;
- :mod:`~repro.runtime.metrics` / :mod:`~repro.runtime.events` — counters,
  per-stage wall-clock histograms and a JSONL event log;
- :mod:`~repro.runtime.report` — the :class:`RunReport` summary with a
  deterministic results digest.

Entry points: ``repro fleet-run`` on the command line, or::

    from repro.runtime import Scheduler, SchedulerConfig, fleet_job_specs

    report = Scheduler(SchedulerConfig(pool="process", workers=4)).run(
        fleet_job_specs(["A", "K", "R"])
    )
    print(report.summary())
"""

from .checkpoint import CHECKPOINT_FORMAT_VERSION, CheckpointStore
from .events import EventLog, read_events
from .job import InjectedFault, JobResult, JobSpec, fleet_job_specs, run_job
from .metrics import Counter, Histogram, MetricsRegistry
from .report import RunReport
from .scheduler import POOL_KINDS, Scheduler, SchedulerConfig, WorkerPool

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "EventLog",
    "read_events",
    "InjectedFault",
    "JobResult",
    "JobSpec",
    "fleet_job_specs",
    "run_job",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "RunReport",
    "POOL_KINDS",
    "Scheduler",
    "SchedulerConfig",
    "WorkerPool",
]
