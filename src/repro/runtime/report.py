"""Fleet run summary: per-car results, totals and a determinism digest.

The digest covers only the spec-determined payload of each result (ESV and
ECR rows, counts) in job-id order — never attempts, stage timings or
wall-clock — so a serial run, a 4-worker process-pool run and a resumed run
of the same specs all hash identically.  That property is what the
scheduler's equivalence tests and the scaling benchmark assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..persistence import canonical_digest, write_json_atomic
from .job import JobResult


@dataclass
class RunReport:
    """Everything one scheduler run produced."""

    results: List[JobResult]
    skipped: List[str] = field(default_factory=list)  # job ids resumed from checkpoint
    pool: str = "serial"
    workers: int = 1
    wall_seconds: float = 0.0
    metrics: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.results = sorted(self.results, key=lambda r: r.job_id)

    @property
    def ok(self) -> List[JobResult]:
        return [result for result in self.results if result.ok]

    @property
    def failed(self) -> List[JobResult]:
        return [result for result in self.results if not result.ok]

    def totals(self) -> dict:
        ok = self.ok
        n_formulas = sum(result.n_formula_esvs for result in ok)
        n_correct = sum(result.n_correct for result in ok)
        return {
            "n_jobs": len(self.results),
            "n_ok": len(ok),
            "n_failed": len(self.failed),
            "n_skipped": len(self.skipped),
            "n_formula_esvs": n_formulas,
            "n_correct": n_correct,
            "precision": n_correct / n_formulas if n_formulas else 1.0,
            "n_enum_esvs": sum(result.n_enum_esvs for result in ok),
            "n_ecrs": sum(result.n_ecrs for result in ok),
        }

    def results_digest(self) -> str:
        """SHA-256 over the deterministic payloads, in job-id order."""
        return canonical_digest(
            [result.deterministic_payload() for result in self.results]
        )

    def to_dict(self) -> dict:
        return {
            "pool": self.pool,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "totals": self.totals(),
            "results_digest": self.results_digest(),
            "skipped": sorted(self.skipped),
            "results": [result.to_dict() for result in self.results],
            "metrics": self.metrics,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        return write_json_atomic(path, self.to_dict())

    def summary(self) -> str:
        """Per-car table + totals, the `repro fleet-run` console output."""
        lines = [
            f"{'Car':<5}{'Status':<9}{'Att':>4}{'#ESV(f)':>8}{'Correct':>8}"
            f"{'Prec':>8}{'#Enum':>7}{'#ECR':>6}{'sec':>8}"
        ]
        for result in self.results:
            resumed = " (resumed)" if result.job_id in self.skipped else ""
            lines.append(
                f"{result.car_key:<5}{result.status + resumed:<9}{result.attempts:>4}"
                f"{result.n_formula_esvs:>8}{result.n_correct:>8}"
                f"{result.precision:>8.1%}{result.n_enum_esvs:>7}"
                f"{result.n_ecrs:>6}{result.wall_seconds:>8.1f}"
            )
        totals = self.totals()
        lines.append(
            f"\n{totals['n_ok']}/{totals['n_jobs']} jobs ok"
            f" ({totals['n_skipped']} resumed from checkpoint)"
            f" in {self.wall_seconds:.1f} s"
            f" [{self.pool} pool, {self.workers} worker(s)]"
        )
        if totals["n_formula_esvs"]:
            lines.append(
                f"Total precision: {totals['n_correct']}/{totals['n_formula_esvs']}"
                f" = {totals['precision']:.1%}"
            )
        lines.append(f"Results digest: {self.results_digest()}")
        return "\n".join(lines)
