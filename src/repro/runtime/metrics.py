"""Run metrics: counters and wall-clock histograms.

Deliberately tiny and dependency-free — the registry is a plain in-memory
object the scheduler owns for the duration of one fleet run, snapshotted
into the :class:`~repro.runtime.report.RunReport` at the end.  Nothing here
reads a clock: callers observe durations they measured themselves (with
:func:`time.perf_counter` or :meth:`repro.simtime.SimClock.perf`), so the
layer stays deterministic under simulated time.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount
        return self.value


class Histogram:
    """Exact-sample histogram of observed durations (seconds).

    Fleet runs observe at most a few thousand values (jobs × stages), so
    keeping the raw samples is cheaper than maintaining bucket boundaries
    and gives exact percentiles.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Observe a batch of samples (e.g. per-formula GP timings)."""
        self._values.extend(float(value) for value in values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "mean_s": round(self.mean, 6),
            "min_s": round(min(self._values), 6),
            "p50_s": round(self.percentile(50), 6),
            "p95_s": round(self.percentile(95), 6),
            "max_s": round(max(self._values), 6),
        }


class MetricsRegistry:
    """Named counters + histograms for one fleet run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name in self._histograms:
            raise ValueError(
                f"metric {name!r} is already registered as a histogram; "
                "one name cannot carry both types"
            )
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name in self._counters:
            raise ValueError(
                f"metric {name!r} is already registered as a counter; "
                "one name cannot carry both types"
            )
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def to_dict(self) -> dict:
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def export_state(self) -> dict:
        """Everything needed to merge this registry into another.

        Unlike :meth:`to_dict`, histograms export their *raw samples*, so
        a cross-process merge (shard workers → supervisor) yields exact
        percentiles — summing per-shard p95 summaries cannot.
        """
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: list(histogram._values)
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold an :meth:`export_state` payload into this registry."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, values in state.get("histograms", {}).items():
            self.histogram(name).extend(values)
