"""POSIX shared-memory transport for per-run observation datasets.

The island GP backend ships each worker's task list once per
:meth:`~repro.core.reverser.DPReverser.infer` call.  Pushing the pickled
datasets through the process-pool pipe is what made the old per-ESV
process backend *lose* to serial; instead the parent packs every
island's blob into one :class:`SharedBlobs` segment and submits only
``(name, offset, length)`` descriptors — a ~100-byte message per island
regardless of capture size.  Workers attach the segment by name, slice
their blob out, and detach.

Lifecycle is the hard part of shm, so it is centralised here:

* every live segment is tracked in a module registry; an ``atexit`` hook
  unlinks whatever is still registered, so normal interpreter exit and
  ``KeyboardInterrupt`` (which still unwinds ``atexit``) leave no
  ``/dev/shm`` orphans;
* :meth:`SharedBlobs.unlink` is idempotent and the creator's
  ``try/finally`` calls it even when a worker crashes mid-generation
  (the pool raises ``BrokenProcessPool``, the ``finally`` still runs);
* a hard kill of the parent (``SIGKILL``) skips all of that, but the
  stdlib ``resource_tracker`` — a separate process — still reaps the
  registered segment;
* worker-side attachments are *untracked* (see :func:`_attach_untracked`):
  before Python 3.13 an attach re-registers the segment with the
  resource tracker, which would either double-unlink at worker exit or
  clobber the parent's registration under the fork-shared tracker.

Platforms without POSIX shared memory (:data:`HAVE_SHM` false, or
creation failing at runtime) fall back to sending blobs inline through
the pool pipe — slower, never wrong.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Dict, List, Optional, Tuple

try:
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover - every CPython we target has it
    _shared_memory = None
    HAVE_SHM = False

#: Segment-name prefix; tests scan ``/dev/shm`` for orphans by this.
SHM_PREFIX = "repro_gp"

_LIVE: Dict[str, "SharedBlobs"] = {}
_LOCK = threading.Lock()
_COUNTER = 0


def _cleanup_live() -> None:
    """Unlink every still-registered segment (atexit safety net)."""
    for store in list(_LIVE.values()):
        store.unlink()


atexit.register(_cleanup_live)


def _attach_untracked(name: str):
    """Attach to a segment without registering it with resource_tracker.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker (fixed only in 3.13's ``track=False``).
    Under the fork start method all processes share one tracker, so a
    worker registration would either be a duplicate or — if the worker
    unregistered afterwards — would erase the *parent's* registration
    and with it the kill -9 backstop.  Only the creating process should
    own the name, so worker attaches suppress registration entirely
    (workers here are single-threaded: the brief monkeypatch cannot
    race another attach).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover
        return _shared_memory.SharedMemory(name=name)
    original = resource_tracker.register

    def _skip(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = _skip
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedBlobs:
    """One shm segment packing several byte blobs, creator-owned.

    ``create`` concatenates the blobs and records ``(offset, length)``
    slices; readers use the static :meth:`read` with a descriptor and
    never touch the registry.  The creator unlinks via :meth:`unlink`
    (idempotent, also run by the module's ``atexit`` hook and by
    ``with`` blocks).
    """

    def __init__(self, shm, slices: List[Tuple[int, int]]) -> None:
        self._shm = shm
        self.slices = slices

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, blobs: List[bytes]) -> "SharedBlobs":
        """Pack ``blobs`` into a fresh segment and register it live."""
        global _COUNTER
        if not HAVE_SHM:
            raise OSError("POSIX shared memory unavailable")
        total = max(1, sum(len(blob) for blob in blobs))
        with _LOCK:
            _COUNTER += 1
            name = f"{SHM_PREFIX}_{os.getpid()}_{_COUNTER}"
        shm = _shared_memory.SharedMemory(name=name, create=True, size=total)
        slices: List[Tuple[int, int]] = []
        offset = 0
        for blob in blobs:
            shm.buf[offset : offset + len(blob)] = blob
            slices.append((offset, len(blob)))
            offset += len(blob)
        store = cls(shm, slices)
        with _LOCK:
            _LIVE[shm.name] = store
        return store

    @staticmethod
    def read(name: str, offset: int, length: int) -> bytes:
        """Copy one blob out of a segment by descriptor (worker side)."""
        shm = _attach_untracked(name)
        try:
            return bytes(shm.buf[offset : offset + length])
        finally:
            shm.close()

    def unlink(self) -> None:
        """Close and remove the segment; safe to call more than once."""
        with _LOCK:
            _LIVE.pop(self.name, None)
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass

    def __enter__(self) -> "SharedBlobs":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


def shm_usable() -> bool:
    """Whether segments can actually be created on this host right now."""
    if not HAVE_SHM:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=1)
    except Exception:
        return False
    try:
        probe.close()
        probe.unlink()
    except Exception:
        pass
    return True


def create_blobs(blobs: List[bytes]) -> Optional[SharedBlobs]:
    """Best-effort :meth:`SharedBlobs.create`; ``None`` means fall back."""
    if not HAVE_SHM:
        return None
    try:
        return SharedBlobs.create(blobs)
    except Exception:
        return None
