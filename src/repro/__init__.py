"""DP-Reverser reproduction.

A full-system reproduction of *"Towards Automatically Reverse Engineering
Vehicle Diagnostic Protocols"* (USENIX Security 2022; ICDCS 2023 poster
"DP-Reverser"): simulated vehicles, diagnostic tools and the cyber-physical
data-collection rig, plus the reverse-engineering pipeline that recovers
proprietary request semantics and response formulas from sniffed traffic.

Quickstart::

    from repro.vehicle import build_car
    from repro.tools import make_tool_for_car
    from repro.cps import DataCollector
    from repro.core import DPReverser

    car = build_car("A")
    tool = make_tool_for_car("A", car)
    capture = DataCollector(tool).collect()
    report = DPReverser().reverse_engineer(capture)
"""

__version__ = "1.0.0"

from .simtime import SimClock, SkewedClock, ntp_synchronise
from . import persistence, scanner  # noqa: F401  (public submodules)
from .formulas import (
    AffineFormula,
    EnumFormula,
    ExpressionFormula,
    Formula,
    ProductFormula,
    TwoVarAffineFormula,
    formulas_equivalent,
)

__all__ = [
    "__version__",
    "SimClock",
    "SkewedClock",
    "ntp_synchronise",
    "AffineFormula",
    "EnumFormula",
    "ExpressionFormula",
    "Formula",
    "ProductFormula",
    "TwoVarAffineFormula",
    "formulas_equivalent",
]
