"""DP-Reverser reproduction.

A full-system reproduction of *"Towards Automatically Reverse Engineering
Vehicle Diagnostic Protocols"* (USENIX Security 2022; ICDCS 2023 poster
"DP-Reverser"): simulated vehicles, diagnostic tools and the cyber-physical
data-collection rig, plus the reverse-engineering pipeline that recovers
proprietary request semantics and response formulas from sniffed traffic.

Quickstart::

    import repro

    car = repro.build_car("A")
    tool = repro.make_tool_for_car("A", car)
    capture = repro.DataCollector(tool).collect()
    report = repro.DPReverser().reverse_engineer(capture)

Robustness (lossy captures)::

    config = repro.ReverserConfig(noise=repro.NoiseProfile.default(seed=7))
    report = repro.DPReverser(config).reverse_engineer(capture)
    print(report.recovery_by_ecu())
"""

__version__ = "1.0.0"

from .simtime import SimClock, SkewedClock, ntp_synchronise
from . import persistence, scanner  # noqa: F401  (public submodules)
from .formulas import (
    AffineFormula,
    EnumFormula,
    ExpressionFormula,
    Formula,
    ProductFormula,
    TwoVarAffineFormula,
    formulas_equivalent,
)
from .can import CanFrame, CanLog, NoiseProfile, SimulatedCanBus, apply_noise
from .transport import (
    BmwEndpoint,
    DecodeEvent,
    DecoderStats,
    IsoTpEndpoint,
    KLineEndpoint,
    TransportError,
    VwTpEndpoint,
)
from .cps import Capture, DataCollector
from .core import (
    AnalysisContext,
    DecodeDiagnostics,
    DPReverser,
    GpBackend,
    GpConfig,
    HybridBackend,
    InferenceBackend,
    InferredFormula,
    LinearBackend,
    LinearFormula,
    ReverseReport,
    ReverserConfig,
)
from .tools import make_tool_for_car
from .vehicle import build_car

__all__ = [
    "__version__",
    "SimClock",
    "SkewedClock",
    "ntp_synchronise",
    "AffineFormula",
    "EnumFormula",
    "ExpressionFormula",
    "Formula",
    "ProductFormula",
    "TwoVarAffineFormula",
    "formulas_equivalent",
    "CanFrame",
    "CanLog",
    "NoiseProfile",
    "SimulatedCanBus",
    "apply_noise",
    "BmwEndpoint",
    "DecodeEvent",
    "DecoderStats",
    "IsoTpEndpoint",
    "KLineEndpoint",
    "TransportError",
    "VwTpEndpoint",
    "Capture",
    "DataCollector",
    "AnalysisContext",
    "DecodeDiagnostics",
    "DPReverser",
    "GpBackend",
    "GpConfig",
    "HybridBackend",
    "InferenceBackend",
    "InferredFormula",
    "LinearBackend",
    "LinearFormula",
    "ReverseReport",
    "ReverserConfig",
    "make_tool_for_car",
    "build_car",
]
