"""Click-sequence planning.

The stylus moves straight along the coordinate axes at fixed speed (§3.1),
so visiting a set of on-screen targets is a travelling-salesman instance
under the Manhattan metric.  The paper approximates it with the
nearest-neighbour heuristic and reports a ≈7.3 % move-time saving over a
random order for 14 targets; :func:`nearest_neighbour_route`,
:func:`random_route` and :func:`brute_force_route` provide the heuristic,
the baseline and the exact optimum (for small instances) respectively.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Sequence, Tuple

Point = Tuple[int, int]


def manhattan(a: Point, b: Point) -> float:
    """Axis-aligned stylus travel distance between two targets."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def route_length(start: Point, route: Sequence[Point], closed: bool = False) -> float:
    """Total travel for visiting ``route`` in order from ``start``.

    With ``closed`` the stylus returns to ``start`` afterwards (the TSP
    formulation of §3.1).
    """
    total = 0.0
    position = start
    for point in route:
        total += manhattan(position, point)
        position = point
    if closed and route:
        total += manhattan(position, start)
    return total


def nearest_neighbour_route(start: Point, targets: Sequence[Point]) -> List[Point]:
    """Greedy nearest-neighbour ordering (the paper's planner)."""
    remaining = list(targets)
    route: List[Point] = []
    position = start
    while remaining:
        best_index = min(
            range(len(remaining)), key=lambda i: manhattan(position, remaining[i])
        )
        position = remaining.pop(best_index)
        route.append(position)
    return route


def random_route(
    targets: Sequence[Point], rng: Optional[random.Random] = None
) -> List[Point]:
    """Uniform random ordering — the paper's comparison baseline."""
    route = list(targets)
    (rng or random.Random()).shuffle(route)
    return route


def brute_force_route(
    start: Point, targets: Sequence[Point], closed: bool = False
) -> List[Point]:
    """Exact optimum by exhaustive search.  Only for small target sets."""
    if len(targets) > 9:
        raise ValueError(
            f"brute force over {len(targets)} targets is intractable; "
            "use nearest_neighbour_route"
        )
    best: Optional[List[Point]] = None
    best_length = float("inf")
    for permutation in itertools.permutations(targets):
        length = route_length(start, permutation, closed=closed)
        if length < best_length:
            best_length = length
            best = list(permutation)
    return best or []


class ClickPlanner:
    """Plans the visiting order for a set of on-screen targets.

    ``plan`` keeps target identity: it accepts ``(point, payload)`` pairs
    and returns them reordered, so callers can carry widget labels through
    the planning step.
    """

    def __init__(self, start: Point = (0, 0)) -> None:
        self.start = start

    def plan(self, targets: Sequence[Tuple[Point, object]]) -> List[Tuple[Point, object]]:
        by_point = {}
        for point, payload in targets:
            by_point.setdefault(point, []).append(payload)
        route = nearest_neighbour_route(self.start, [point for point, __ in targets])
        ordered: List[Tuple[Point, object]] = []
        seen: dict = {}
        for point in route:
            index = seen.get(point, 0)
            ordered.append((point, by_point[point][index]))
            seen[point] = index + 1
        return ordered

    def travel(self, targets: Sequence[Point]) -> float:
        return route_length(self.start, nearest_neighbour_route(self.start, targets))
