"""Virtual cameras.

Two cameras observe the diagnostic tool (Fig. 6): *camera a* feeds live
screenshots to the UI analyzer that steers the robotic clicker, and
*camera b* records a timestamped video of the UI for offline reverse
engineering.

A captured frame is an abstract image: a list of :class:`TextRegion`
rectangles, each holding the pixel-perfect text the screen showed.  Reading
errors are *not* introduced here — they belong to the OCR stage
(:mod:`repro.cps.ocr`), exactly as in the real system where the camera is
faithful and Tesseract is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..simtime import SimClock, SkewedClock
from ..tools.ui import Screen, WidgetKind


@dataclass(frozen=True)
class TextRegion:
    """One detected text area of a screenshot (the EAST detector's output)."""

    text: str
    x: int
    y: int
    width: int
    height: int
    kind: str  # "label" | "value" | "button" | "icon_button"
    icon: str = ""

    @property
    def center(self):
        return (self.x + self.width // 2, self.y + self.height // 2)


@dataclass
class CapturedFrame:
    """One screenshot: regions + the camera-local capture timestamp."""

    timestamp: float
    screen_name: str
    regions: List[TextRegion]

    def texts(self) -> List[str]:
        return [region.text for region in self.regions]


class Camera:
    """Renders the tool's current screen into a :class:`CapturedFrame`."""

    def __init__(self, clock, name: str = "camera") -> None:
        # Accepts a SimClock or a SkewedClock (device-local timestamps).
        self.clock = clock
        self.name = name

    def _now(self) -> float:
        if isinstance(self.clock, SkewedClock):
            return self.clock.read()
        return self.clock.now()

    def capture(self, screen: Screen) -> CapturedFrame:
        regions = [
            TextRegion(
                text=widget.text,
                x=widget.x,
                y=widget.y,
                width=widget.width,
                height=widget.height,
                kind=widget.kind.value,
                icon=widget.icon,
            )
            for widget in screen.widgets
            if widget.text or widget.kind == WidgetKind.ICON_BUTTON
        ]
        return CapturedFrame(self._now(), screen.name, regions)


class VideoRecorder:
    """Camera *b*: accumulates timestamped frames of the tool UI.

    Mirrors the "Timestamp Camera Free" app of §3.1 — every frame carries
    the recorder's local timestamp so the pipeline can align UI text with
    CAN traffic.
    """

    def __init__(self, clock, name: str = "camera-b") -> None:
        self.camera = Camera(clock, name)
        self.frames: List[CapturedFrame] = []

    def record(self, screen: Screen) -> CapturedFrame:
        frame = self.camera.capture(screen)
        self.frames.append(frame)
        return frame

    def __len__(self) -> int:
        return len(self.frames)
