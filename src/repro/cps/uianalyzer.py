"""UI analyzer: decides what to click from OCR'd screenshots (§3.1).

The analyzer never touches the tool's internals — it works purely on the
:class:`~repro.cps.ocr.OcrFrame` produced from *camera a*'s screenshot:

* text regions are matched against target keywords ("Read Data Stream",
  "Active Test"), navigation keywords and an ignore list ("Clear Trouble
  Codes"...), with fuzzy matching to survive OCR character drops;
* textless buttons are matched against pre-defined icon templates by
  similarity (the paper's Canny-edge + template comparison), and only
  clicked above a threshold.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from difflib import SequenceMatcher
from typing import Dict, List, Optional, Tuple

from .ocr import OcrFrame, OcrRegion

TARGET_KEYWORDS = ("Read Data Stream", "Active Test")
NAV_KEYWORDS = ("Start", "Back", "Next Page")
IGNORE_KEYWORDS = (
    "Clear Trouble Codes",
    "Read Trouble Codes",
    "ECU Coding",
    "Special Functions",
)

_PAGE_PATTERN = re.compile(r"\((\d+)\s*/\s*(\d+)\)")


def text_similarity(a: str, b: str) -> float:
    """Normalised similarity in [0, 1] tolerant to OCR character noise."""
    return SequenceMatcher(None, a.lower(), b.lower()).ratio()


def fuzzy_match(text: str, keyword: str, threshold: float = 0.82) -> bool:
    return text_similarity(text, keyword) >= threshold


@dataclass
class UiAnalysis:
    """Classification of one screenshot's regions."""

    function_buttons: Dict[str, OcrRegion] = field(default_factory=dict)
    nav_buttons: Dict[str, OcrRegion] = field(default_factory=dict)
    selectable_rows: List[OcrRegion] = field(default_factory=list)
    plain_buttons: List[OcrRegion] = field(default_factory=list)
    icon_buttons: List[Tuple[OcrRegion, str, float]] = field(default_factory=list)
    value_rows: List[Tuple[OcrRegion, OcrRegion]] = field(default_factory=list)
    title: str = ""
    page: int = 1
    pages: int = 1


class UIAnalyzer:
    """Classifies OCR'd screenshots into clickable targets."""

    def __init__(
        self,
        icon_templates: Optional[Dict[str, str]] = None,
        icon_threshold: float = 0.8,
        keyword_threshold: float = 0.82,
    ) -> None:
        # template name -> semantic action label
        self.icon_templates = icon_templates or {}
        self.icon_threshold = icon_threshold
        self.keyword_threshold = keyword_threshold

    # ------------------------------------------------------------------ icons

    def icon_similarity(self, icon: str, template: str) -> float:
        """Similarity of a screen icon to a stored template picture.

        The real system compares cropped widget images ([86] in the paper);
        here identity of the icon asset is a perfect-match proxy, with name
        similarity standing in for near-matches.
        """
        if not icon or not template:
            return 0.0
        if icon == template:
            return 0.95
        return 0.5 * text_similarity(icon, template)

    # ---------------------------------------------------------------- analyze

    def analyze(self, frame: OcrFrame) -> UiAnalysis:
        analysis = UiAnalysis()
        labels = [r for r in frame.regions if r.kind == "label"]
        if labels:
            analysis.title = labels[0].text
            match = _PAGE_PATTERN.search(analysis.title)
            if match:
                analysis.page = int(match.group(1))
                analysis.pages = int(match.group(2))

        for region in frame.regions:
            if region.kind == "icon_button":
                best: Tuple[str, float] = ("", 0.0)
                for template, action in self.icon_templates.items():
                    score = self.icon_similarity(region.icon, template)
                    if score > best[1]:
                        best = (action, score)
                if best[1] >= self.icon_threshold:
                    analysis.icon_buttons.append((region, best[0], best[1]))
                continue
            if region.kind != "button":
                continue
            text = region.text.strip()
            if any(fuzzy_match(text, kw, self.keyword_threshold) for kw in IGNORE_KEYWORDS):
                continue
            matched_nav = next(
                (kw for kw in NAV_KEYWORDS if fuzzy_match(text, kw, self.keyword_threshold)),
                None,
            )
            if matched_nav:
                analysis.nav_buttons[matched_nav] = region
                continue
            matched_fn = next(
                (kw for kw in TARGET_KEYWORDS if fuzzy_match(text, kw, self.keyword_threshold)),
                None,
            )
            if matched_fn:
                analysis.function_buttons[matched_fn] = region
                continue
            if text.startswith("[ ]") or text.startswith("[x]"):
                analysis.selectable_rows.append(region)
                continue
            analysis.plain_buttons.append(region)

        # Pair live-data rows: a value region aligned with the nearest label
        # on the same row (same y band).
        values = [r for r in frame.regions if r.kind == "value"]
        for value in values:
            row_labels = [l for l in labels if abs(l.y - value.y) <= value.height // 2]
            if row_labels:
                label = min(row_labels, key=lambda l: abs(l.x - value.x))
                analysis.value_rows.append((label, value))
        return analysis

    # ---------------------------------------------------------------- helpers

    @staticmethod
    def unchecked_rows(analysis: UiAnalysis) -> List[OcrRegion]:
        return [r for r in analysis.selectable_rows if not r.text.startswith("[x]")]

    @staticmethod
    def row_label(region: OcrRegion) -> str:
        """Strip the checkbox prefix from a selectable row's text."""
        text = region.text
        for prefix in ("[ ] ", "[x] ", "[ ]", "[x]"):
            if text.startswith(prefix):
                return text[len(prefix) :]
        return text
