"""The robotic clicker (stylus arm) and its control scripts.

The arm moves a stylus straight along the coordinate axes at fixed speed
and taps the tool's touchscreen (§3.1).  Scripts are sequences of *click*
and *wait* statements produced by the script generator; the executor runs
them against a :class:`~repro.tools.diagtool.DiagnosticTool` and logs every
tap with its timestamp — the log later splits the CAN capture and the video
into per-action parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..simtime import SimClock
from .planner import manhattan

Point = Tuple[int, int]


@dataclass(frozen=True)
class ClickStatement:
    """Tap the screen at (x, y).  ``label`` is kept for the action log."""

    x: int
    y: int
    label: str = ""


@dataclass(frozen=True)
class WaitStatement:
    """Idle for ``seconds`` so the tool can react (or stream live data)."""

    seconds: float


Statement = Union[ClickStatement, WaitStatement]


@dataclass
class Script:
    """An executable clicking script."""

    statements: List[Statement] = field(default_factory=list)

    def append_click(self, x: int, y: int, label: str = "") -> None:
        self.statements.append(ClickStatement(x, y, label))

    def append_wait(self, seconds: float) -> None:
        self.statements.append(WaitStatement(seconds))


class ScriptGenerator:
    """Turns an ordered target list into a script (§3.1 "Script Generator").

    A wait statement follows every click; clicks that start a long-running
    action (reading a data stream) get the long ``read_wait_s``.
    """

    def __init__(self, click_wait_s: float = 1.0, read_wait_s: float = 30.0) -> None:
        self.click_wait_s = click_wait_s
        self.read_wait_s = read_wait_s

    def generate(
        self, targets: Sequence[Tuple[Point, str]], long_wait_labels: Sequence[str] = ()
    ) -> Script:
        script = Script()
        long_labels = set(long_wait_labels)
        for (x, y), label in targets:
            script.append_click(x, y, label)
            wait = self.read_wait_s if label in long_labels else self.click_wait_s
            script.append_wait(wait)
        return script


@dataclass
class ClickRecord:
    """One executed tap (the §3.1 logger output)."""

    timestamp: float
    x: int
    y: int
    label: str
    hit: bool  # whether a widget handled the tap


class RoboticClicker:
    """Kinematic model of the stylus arm.

    Moves at ``speed_px_s`` along axis-aligned paths, taps, and logs.  All
    timing flows through the shared simulated clock, so arm travel shows up
    in frame timestamps just like in the physical rig.
    """

    def __init__(
        self,
        clock: SimClock,
        speed_px_s: float = 400.0,
        tap_duration_s: float = 0.15,
        home: Point = (0, 0),
    ) -> None:
        if speed_px_s <= 0:
            raise ValueError("stylus speed must be positive")
        self.clock = clock
        self.speed_px_s = speed_px_s
        self.tap_duration_s = tap_duration_s
        self.position: Point = home
        self.log: List[ClickRecord] = []
        self.total_travel_px = 0.0

    def move_to(self, x: int, y: int) -> float:
        """Travel to (x, y); returns the travel time spent."""
        distance = manhattan(self.position, (x, y))
        travel_time = distance / self.speed_px_s
        self.clock.advance(travel_time)
        self.total_travel_px += distance
        self.position = (x, y)
        return travel_time

    def click(self, x: int, y: int, tap: Callable[[int, int], bool], label: str = "") -> bool:
        """Move to (x, y) and tap; returns whether a widget fired."""
        self.move_to(x, y)
        self.clock.advance(self.tap_duration_s)
        hit = tap(x, y)
        self.log.append(ClickRecord(self.clock.now(), x, y, label, hit))
        return hit

    def run_script(
        self,
        script: Script,
        tap: Callable[[int, int], bool],
        on_wait: Optional[Callable[[float], None]] = None,
    ) -> List[ClickRecord]:
        """Execute ``script``; ``on_wait`` is called instead of idle sleeps
        so the caller can keep the tool ticking (live data) while waiting."""
        executed: List[ClickRecord] = []
        for statement in script.statements:
            if isinstance(statement, ClickStatement):
                self.click(statement.x, statement.y, tap, statement.label)
                executed.append(self.log[-1])
            else:
                if on_wait is not None:
                    on_wait(statement.seconds)
                else:
                    self.clock.advance(statement.seconds)
        return executed
