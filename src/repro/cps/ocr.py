"""Simulated OCR engine with a Tesseract-style error model.

The paper's pipeline quality hinges on OCR imperfection: §3.3 dedicates a
two-stage filter to OCR mistakes and §4.4 traces most baseline-regression
failures to them.  The error model reproduces the three error classes the
paper reports:

* **decimal-point drop** — ``"25.00" → "2500"`` (the §3.3 example);
* **partial read** — ``"11.4" → "4"`` (the §4.4 example);
* **digit confusion** — ``"3.7" → "8.0"``-style substitutions from the
  classic OCR confusion pairs (3↔8, 1↔7, 0↔O…).

Error probability is configured per *frame* so the Tab. 4 per-picture
precision (97.6 % AUTEL, 85.0 % LAUNCH) maps directly onto the
``error_rate`` parameter of the tool profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .camera import CapturedFrame, TextRegion

#: Classic single-character OCR confusions (subset of Tesseract's).
CONFUSION_PAIRS = {
    "3": "8", "8": "3", "1": "7", "7": "1", "0": "9", "9": "0",
    "5": "6", "6": "5", "2": "7", "4": "9",
}


@dataclass(frozen=True)
class OcrRegion:
    """One recognised text area (possibly mis-read)."""

    text: str
    x: int
    y: int
    width: int
    height: int
    kind: str
    icon: str = ""

    @property
    def center(self) -> Tuple[int, int]:
        return (self.x + self.width // 2, self.y + self.height // 2)


@dataclass
class OcrFrame:
    """OCR output for one captured frame."""

    timestamp: float
    screen_name: str
    regions: List[OcrRegion]
    corrupted: bool  # whether the error model fired on this frame

    def texts(self) -> List[str]:
        return [region.text for region in self.regions]


def _has_digits(text: str) -> bool:
    return any(ch.isdigit() for ch in text)


class OcrEngine:
    """Tesseract stand-in with a seeded, per-frame error model."""

    def __init__(self, error_rate: float = 0.024, seed: int = 7) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error rate {error_rate} outside [0, 1]")
        self.error_rate = error_rate
        self.rng = random.Random(seed)
        self.frames_read = 0
        self.frames_corrupted = 0

    # ------------------------------------------------------------- corruption

    def _corrupt_value(self, text: str) -> str:
        """Apply one of the three error classes to a numeric string."""
        mode = self.rng.random()
        if mode < 0.4 and "." in text:
            return text.replace(".", "", 1)  # decimal-point drop: 25.00 -> 2500
        if mode < 0.7 and len(text) > 2:
            # Partial read: keep a suffix of the numeric part (11.4 -> 4).
            head, __, unit = text.partition(" ")
            cut = self.rng.randrange(1, max(2, len(head)))
            partial = head[cut:] or head[-1]
            return f"{partial} {unit}".strip()
        # Digit confusion.
        chars = list(text)
        digit_positions = [i for i, ch in enumerate(chars) if ch in CONFUSION_PAIRS]
        if digit_positions:
            pos = self.rng.choice(digit_positions)
            chars[pos] = CONFUSION_PAIRS[chars[pos]]
        return "".join(chars)

    def _corrupt_label(self, text: str) -> str:
        """Drop or mangle a character of a non-numeric label."""
        if len(text) < 2:
            return text
        pos = self.rng.randrange(len(text))
        return text[:pos] + text[pos + 1 :]

    # ------------------------------------------------------------------- read

    def read_frame(self, frame: CapturedFrame) -> OcrFrame:
        """Recognise every text region of ``frame``.

        With probability ``error_rate`` the frame is *corrupted*: one of its
        digit-bearing regions (preferring live values) is mis-read.
        """
        self.frames_read += 1
        regions = [
            OcrRegion(r.text, r.x, r.y, r.width, r.height, r.kind, r.icon)
            for r in frame.regions
        ]
        corrupted = False
        if regions and self.rng.random() < self.error_rate:
            candidates = [i for i, r in enumerate(regions) if r.kind == "value" and _has_digits(r.text)]
            if not candidates:
                candidates = [i for i, r in enumerate(regions) if _has_digits(r.text)]
            if not candidates:
                candidates = list(range(len(regions)))
            index = self.rng.choice(candidates)
            region = regions[index]
            new_text = (
                self._corrupt_value(region.text)
                if _has_digits(region.text)
                else self._corrupt_label(region.text)
            )
            if new_text != region.text:
                regions[index] = OcrRegion(
                    new_text, region.x, region.y, region.width, region.height,
                    region.kind, region.icon,
                )
                corrupted = True
        if corrupted:
            self.frames_corrupted += 1
        return OcrFrame(frame.timestamp, frame.screen_name, regions, corrupted)

    def read_video(self, frames: List[CapturedFrame]) -> List[OcrFrame]:
        """OCR a whole recording (MPlayer frame split + Tesseract, §3.3)."""
        return [self.read_frame(frame) for frame in frames]

    @property
    def observed_precision(self) -> float:
        """Fraction of frames read without any error (the Tab. 4 metric)."""
        if not self.frames_read:
            return 1.0
        return 1.0 - self.frames_corrupted / self.frames_read
