"""Cyber-physical data-collection substrate: cameras, OCR, arm, planner."""

from .camera import Camera, CapturedFrame, TextRegion, VideoRecorder
from .ocr import CONFUSION_PAIRS, OcrEngine, OcrFrame, OcrRegion
from .arm import (
    ClickRecord,
    ClickStatement,
    RoboticClicker,
    Script,
    ScriptGenerator,
    WaitStatement,
)
from .planner import (
    ClickPlanner,
    brute_force_route,
    manhattan,
    nearest_neighbour_route,
    random_route,
    route_length,
)
from .uianalyzer import (
    IGNORE_KEYWORDS,
    NAV_KEYWORDS,
    TARGET_KEYWORDS,
    UIAnalyzer,
    UiAnalysis,
    fuzzy_match,
    text_similarity,
)
from .collector import Capture, DataCollector, Segment

__all__ = [
    "Camera",
    "CapturedFrame",
    "TextRegion",
    "VideoRecorder",
    "CONFUSION_PAIRS",
    "OcrEngine",
    "OcrFrame",
    "OcrRegion",
    "ClickRecord",
    "ClickStatement",
    "RoboticClicker",
    "Script",
    "ScriptGenerator",
    "WaitStatement",
    "ClickPlanner",
    "brute_force_route",
    "manhattan",
    "nearest_neighbour_route",
    "random_route",
    "route_length",
    "IGNORE_KEYWORDS",
    "NAV_KEYWORDS",
    "TARGET_KEYWORDS",
    "UIAnalyzer",
    "UiAnalysis",
    "fuzzy_match",
    "text_similarity",
    "Capture",
    "DataCollector",
    "Segment",
]
