"""Data-collection orchestrator (the application layer of Fig. 6b).

Given a diagnostic tool attached to a vehicle, :class:`DataCollector` runs
the paper's full closed loop:

1. *camera a* screenshots the UI → OCR → :class:`UIAnalyzer` classifies the
   screen and proposes click targets;
2. the :class:`ClickPlanner` orders the targets (nearest-neighbour TSP);
3. the :class:`ScriptGenerator` emits a click/wait script which the
   :class:`RoboticClicker` executes, logging every tap;
4. while data streams, *camera b* records the timestamped UI video and the
   OBD sniffer captures every CAN frame.

The result is a :class:`Capture` — the sole input of the DP-Reverser
pipeline (plus the click log used to split it into per-action segments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..can import CanLog
from ..simtime import SkewedClock
from ..tools.diagtool import DiagnosticTool
from .arm import ClickRecord, RoboticClicker, Script, ScriptGenerator
from .camera import Camera, CapturedFrame, VideoRecorder
from .ocr import OcrEngine, OcrFrame
from .planner import ClickPlanner
from .uianalyzer import UIAnalyzer, UiAnalysis


@dataclass
class Segment:
    """One logged activity window within a capture."""

    kind: str  # "live" | "active_test"
    ecu: str
    label: str
    t_start: float
    t_end: float


@dataclass
class Capture:
    """Everything one collection campaign produced."""

    model: str
    tool_name: str
    can_log: CanLog
    video: List[CapturedFrame]
    clicks: List[ClickRecord]
    segments: List[Segment]
    tool_error_rate: float
    camera_offset_s: float = 0.0  # camera-vs-sniffer clock offset, if any

    def video_between(self, start: float, end: float) -> List[CapturedFrame]:
        return [f for f in self.video if start <= f.timestamp < end]


class DataCollector:
    """Runs one full collection campaign against one vehicle."""

    def __init__(
        self,
        tool: DiagnosticTool,
        read_duration_s: float = 30.0,
        camera_offset_s: float = 0.0,
        ocr_seed: int = 11,
        analyzer: Optional[UIAnalyzer] = None,
        obd_anchor_rounds: int = 10,
    ) -> None:
        self.tool = tool
        self.vehicle = tool.vehicle
        self.clock = tool.clock
        self.read_duration_s = read_duration_s
        self.sniffer = self.vehicle.attach_sniffer()
        self.camera_a = Camera(self.clock, "camera-a")
        # camera b may run on a device whose clock is offset (§9.4).
        camera_clock = (
            SkewedClock(self.clock, offset=camera_offset_s)
            if camera_offset_s
            else self.clock
        )
        self.camera_offset_s = camera_offset_s
        self.video = VideoRecorder(camera_clock)
        self.ocr = OcrEngine(tool.profile.ocr_error_rate, seed=ocr_seed)
        self.arm = RoboticClicker(self.clock)
        self.planner = ClickPlanner()
        self.scriptgen = ScriptGenerator(click_wait_s=0.5, read_wait_s=read_duration_s)
        self.analyzer = analyzer or UIAnalyzer()
        self.obd_anchor_rounds = obd_anchor_rounds
        self.segments: List[Segment] = []

    # ----------------------------------------------------------------- camera

    def _look(self) -> UiAnalysis:
        """Screenshot with camera a, OCR it, classify the regions."""
        frame = self.camera_a.capture(self.tool.screen)
        return self.analyzer.analyze(self.ocr.read_frame(frame))

    def _click_region(self, region, label: str = "") -> bool:
        x, y = region.center
        return self.arm.click(x, y, self.tool.tap, label or region.text)

    # ------------------------------------------------------------------- main

    def collect(self) -> Capture:
        """Drive the whole tool menu tree and return the capture."""
        self._run_obd_anchor()
        home = self._look()
        ecu_names = [region.text for region in home.plain_buttons]
        for ecu_label in ecu_names:
            self._visit_ecu(ecu_label)
        return Capture(
            model=self.vehicle.model,
            tool_name=self.tool.profile.name,
            can_log=self.sniffer.log,
            video=self.video.frames,
            clicks=self.arm.log,
            segments=self.segments,
            tool_error_rate=self.tool.profile.ocr_error_rate,
            camera_offset_s=self.camera_offset_s,
        )

    # ------------------------------------------------------------- OBD anchor

    def _run_obd_anchor(self) -> None:
        """§9.4 method (2): read well-documented OBD-II PIDs first.

        Their public formulas let the offline pipeline compute each
        response's true value, find it on a screenshot, and estimate the
        camera-vs-sniffer clock offset for the whole capture.
        """
        if not self.obd_anchor_rounds or not self.tool.obd_supported():
            return
        t_start = self.clock.now()
        snap_delay = 0.3 * self.tool.profile.poll_interval_s
        for __ in range(self.obd_anchor_rounds):
            self.tool.obd_anchor_tick()
            self.clock.advance(snap_delay)
            self.tool.flush_display()
            self.video.record(self.tool.screen)
            self.clock.advance(self.tool.profile.poll_interval_s - snap_delay)
        self.segments.append(
            Segment("obd_anchor", "OBD-II", "Quick Check", t_start, self.clock.now())
        )
        back = self.tool.screen.find("Back")
        if back is not None:
            self.arm.click(*back.center, self.tool.tap, "Back")

    # -------------------------------------------------------------- ECU visit

    def _visit_ecu(self, ecu_label: str) -> None:
        home = self._look()
        target = next(
            (r for r in home.plain_buttons if r.text == ecu_label), None
        )
        if target is None:
            return
        self._click_region(target)
        menu = self._look()
        if "Read Data Stream" in menu.function_buttons:
            self._click_region(menu.function_buttons["Read Data Stream"])
            self._run_datastream(ecu_label)
        menu = self._look()
        if "Active Test" in menu.function_buttons:
            self._click_region(menu.function_buttons["Active Test"])
            self._run_active_tests(ecu_label)
        menu = self._look()
        if "Back" in menu.nav_buttons:
            self._click_region(menu.nav_buttons["Back"])

    # ------------------------------------------------------------ data stream

    def _run_datastream(self, ecu_label: str) -> None:
        """Select every ESV row (TSP-ordered clicks), then record live data."""
        pages_visited = 0
        while True:
            analysis = self._look()
            rows = self.analyzer.unchecked_rows(analysis)
            targets = [((r.center), r) for r in rows]
            for __, region in self.planner.plan(targets):
                self._click_region(region, self.analyzer.row_label(region))
            pages_visited += 1
            analysis = self._look()
            if pages_visited < analysis.pages and "Next Page" in analysis.nav_buttons:
                self._click_region(analysis.nav_buttons["Next Page"])
                continue
            break
        analysis = self._look()
        start_button = analysis.nav_buttons.get("Start")
        if start_button is None:
            return
        self._click_region(start_button)
        t_start = self.clock.now()
        # Live: keep the tool polling and camera b rolling for the read
        # window.  The frame is recorded right after each poll so its
        # timestamp matches the responses it displays; the poll interval is
        # the tool's refresh rate.
        snap_delay = 0.3 * self.tool.profile.poll_interval_s
        while self.clock.now() - t_start < self.read_duration_s:
            self.tool.tick()
            # The camera snaps shortly after the poll (so each frame is
            # nearest its own tick); values still inside the tool's
            # rendering pipeline at that moment show their previous
            # reading — the paper's display-lag noise (§4.3 cause (i)).
            self.clock.advance(snap_delay)
            self.tool.flush_display()
            self.video.record(self.tool.screen)
            self.clock.advance(self.tool.profile.poll_interval_s - snap_delay)
        self.segments.append(
            Segment("live", ecu_label, "Read Data Stream", t_start, self.clock.now())
        )
        analysis = self._look()
        if "Back" in analysis.nav_buttons:
            self._click_region(analysis.nav_buttons["Back"])

    # ------------------------------------------------------------ active test

    def _run_active_tests(self, ecu_label: str) -> None:
        """Run every actuator test, re-analyzing after each (layout shifts)."""
        tested: set = set()
        while True:
            analysis = self._look()
            self.video.record(self.tool.screen)
            candidates = [
                r
                for r in analysis.plain_buttons
                if r.text not in tested and not r.text.startswith("Last test:")
            ]
            if not candidates:
                break
            ordered = self.planner.plan([(r.center, r) for r in candidates])
            __, region = ordered[0]
            tested.add(region.text)
            t_start = self.clock.now()
            self._click_region(region)
            self.video.record(self.tool.screen)
            self.segments.append(
                Segment("active_test", ecu_label, region.text, t_start, self.clock.now())
            )
            self.clock.advance(0.5)
        analysis = self._look()
        if "Back" in analysis.nav_buttons:
            self._click_region(analysis.nav_buttons["Back"])
