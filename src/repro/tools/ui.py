"""Widget/screen model for the simulated diagnostic tools.

The paper's data-collection rig never gets inside the diagnostic tool — it
only sees the screen through a camera and touches it through a stylus.  The
UI model is therefore the *entire* interface between the tool simulator and
the CPS layer: a :class:`Screen` is a set of positioned :class:`Widget`
instances carrying text (or an icon for textless buttons), and the tool
reacts to taps at (x, y) coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Tuple


class WidgetKind(Enum):
    LABEL = "label"  # static text (titles, names)
    VALUE = "value"  # live-updating numeric text
    BUTTON = "button"  # tappable, with text
    ICON_BUTTON = "icon_button"  # tappable, no text — matched by similarity


@dataclass
class Widget:
    """One rectangular UI element."""

    kind: WidgetKind
    text: str
    x: int
    y: int
    width: int = 160
    height: int = 32
    icon: str = ""  # icon template name for ICON_BUTTON widgets
    on_tap: Optional[Callable[[], None]] = None

    @property
    def center(self) -> Tuple[int, int]:
        return (self.x + self.width // 2, self.y + self.height // 2)

    def contains(self, x: int, y: int) -> bool:
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height

    @property
    def tappable(self) -> bool:
        return self.kind in (WidgetKind.BUTTON, WidgetKind.ICON_BUTTON)


@dataclass
class Screen:
    """A full screen of widgets, identified by a name for logging."""

    name: str
    title: str
    widgets: List[Widget] = field(default_factory=list)
    width: int = 800
    height: int = 600

    def add(self, widget: Widget) -> Widget:
        self.widgets.append(widget)
        return widget

    def widget_at(self, x: int, y: int) -> Optional[Widget]:
        """Topmost tappable widget at the given coordinates."""
        for widget in reversed(self.widgets):
            if widget.tappable and widget.contains(x, y):
                return widget
        return None

    def find(self, text: str) -> Optional[Widget]:
        """First widget whose text equals ``text``."""
        for widget in self.widgets:
            if widget.text == text:
                return widget
        return None

    def buttons(self) -> List[Widget]:
        return [w for w in self.widgets if w.tappable]

    def labels(self) -> List[Widget]:
        return [w for w in self.widgets if not w.tappable]


class ScreenBuilder:
    """Lays widgets out in rows, the way the real tools' list UIs look."""

    ROW_HEIGHT = 44
    MARGIN_X = 40
    MARGIN_Y = 80

    def __init__(self, name: str, title: str, width: int = 800, height: int = 600) -> None:
        self.screen = Screen(name, title, width=width, height=height)
        self.screen.add(
            Widget(WidgetKind.LABEL, title, self.MARGIN_X, 24, width=width - 80)
        )
        self._row = 0

    def add_row(
        self,
        kind: WidgetKind,
        text: str,
        on_tap: Optional[Callable[[], None]] = None,
        column: int = 0,
        icon: str = "",
    ) -> Widget:
        widget = Widget(
            kind,
            text,
            x=self.MARGIN_X + column * 360,
            y=self.MARGIN_Y + self._row * self.ROW_HEIGHT,
            width=320,
            on_tap=on_tap,
            icon=icon,
        )
        if column == 0:
            self._row += 1
        return self.screen.add(widget)

    def add_pair(self, label: str, value: str) -> Tuple[Widget, Widget]:
        """A name/value row as shown on live-data screens."""
        name_widget = self.add_row(WidgetKind.LABEL, label)
        value_widget = Widget(
            WidgetKind.VALUE,
            value,
            x=self.MARGIN_X + 360,
            y=name_widget.y,
            width=200,
        )
        return name_widget, self.screen.add(value_widget)

    def rows_used(self) -> int:
        return self._row
