"""K-Line diagnostic session driver.

The oldest KWP 2000 deployments run over the K-Line (ISO 14230), not CAN.
:class:`KLineDiagnosticSession` plays the role VCDS plays for such cars: it
fast-inits each ECU, polls its measuring blocks, renders the physical
values on a laptop-style screen (using the manufacturer formula table) and
lets a video recorder + the K-Line sniffer observe everything — producing
the same two artefacts the CAN pipeline consumes.

Use :func:`build_kline_vehicle` for a ready-made KWP-over-K-Line car and
:meth:`KLineDiagnosticSession.collect` for a full capture; feed the result
to :class:`~repro.core.reverser.DPReverser` via ``analyze(capture,
messages=...)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..can import CanLog
from ..diagnostics import kwp2000
from ..diagnostics.messages import is_negative_response
from ..simtime import SimClock
from ..transport.kline import (
    KLineBus,
    KLineEndpoint,
    KLineTester,
    parse_capture,
    to_assembled_messages,
)
from ..vehicle.ecu import KwpDataGroup, KwpMeasurement, SimulatedEcu
from ..vehicle.signals import ConstantSignal, RampSignal, SineSignal
from .diagtool import _decimals_for_unit
from .ui import Screen, ScreenBuilder, WidgetKind


@dataclass
class KLineVehicle:
    """A K-Line car: the wire plus address-mapped ECUs."""

    bus: KLineBus
    ecus: Dict[int, SimulatedEcu]  # K-Line address -> ECU
    model: str = "K-Line KWP car"

    @property
    def clock(self) -> SimClock:
        return self.bus.clock


def build_kline_vehicle(seed: int = 77, n_measurements: int = 9) -> KLineVehicle:
    """A VW-Golf-style KWP 2000 vehicle on the K-Line."""
    rng = random.Random(seed)
    bus = KLineBus(SimClock())
    ecus: Dict[int, SimulatedEcu] = {}
    names = ["Engine", "Instrument Cluster"]
    measurement_pool = [
        ("Engine Speed", 0x01), ("Coolant Temperature", 0x05),
        ("Battery Voltage", 0x06), ("Vehicle Speed", 0x07),
        ("Injection Timing", 0x0F), ("Manifold Pressure", 0x12),
        ("Lambda Control", 0x17), ("Engine Load", 0x02),
        ("Fuel Consumption", 0x23), ("Intake Air Temperature", 0x05),
    ]
    per_ecu = max(1, n_measurements // len(names))
    index = 0
    # Local ids are drawn from disjoint per-ECU ranges: the pipeline keys
    # ESV observations by (local id, slot), so two ECUs reusing block 01
    # would alias.  (Real tools disambiguate by the CAN id / K-Line address
    # of the conversation; see DESIGN.md, known limitations.)
    for ecu_index, (address, name) in enumerate(zip((0x01, 0x17), names)):
        ecu = SimulatedEcu(name, bus.clock)
        local_id = 1 + 0x20 * ecu_index
        while index < min(n_measurements, (len(ecus) + 1) * per_ecu):
            group = KwpDataGroup(local_id, f"Block {local_id:02X}")
            for __ in range(min(3, n_measurements - index)):
                if index >= n_measurements:
                    break
                mname, ftype = measurement_pool[index % len(measurement_pool)]
                group.measurements.append(
                    KwpMeasurement(
                        mname if index < len(measurement_pool) else f"{mname} #{index}",
                        formula_type=ftype,
                        x0=ConstantSignal(rng.randrange(20, 120))
                        if rng.random() < 0.2
                        else SineSignal(10, 250, period_s=rng.uniform(9, 25)),
                        x1=RampSignal(5, 250, period_s=rng.uniform(7, 20)),
                    )
                )
                index += 1
            ecu.add_kwp_group(group)
            local_id += 1

        endpoint = KLineEndpoint(
            bus,
            f"ecu@{address:02X}",
            address,
            on_message=lambda m, _e=None: None,  # replaced below
        )

        def responder(message, ecu=ecu, endpoint=endpoint):
            response = ecu.handle_request(message.payload)
            if response is not None:
                endpoint.send(response, target=message.source)

        endpoint.on_message = responder
        ecus[address] = ecu
    return KLineVehicle(bus=bus, ecus=ecus)


class KLineDiagnosticSession:
    """Drives a K-Line vehicle and records screen + wire."""

    def __init__(self, vehicle: KLineVehicle, poll_interval_s: float = 0.5) -> None:
        # Imported here: repro.cps imports repro.tools.ui at module scope,
        # so a module-level import from this file would be circular.
        from ..cps.camera import VideoRecorder

        self.vehicle = vehicle
        self.poll_interval_s = poll_interval_s
        self.tester = KLineTester(vehicle.bus)
        self.video = VideoRecorder(vehicle.clock)
        self.segments: List = []

    def _render(self, values: Dict[str, str], ecu_name: str) -> Screen:
        builder = ScreenBuilder("live", f"{ecu_name} - Measuring Blocks", 1280, 800)
        for label, text in values.items():
            builder.add_pair(label, text)
        builder.add_row(WidgetKind.BUTTON, "Back")
        return builder.screen

    def read_ecu(self, address: int, duration_s: float = 30.0) -> None:
        """Fast-init one ECU and poll all its measuring blocks."""
        ecu = self.vehicle.ecus[address]
        if not self.tester.fast_init(address):
            raise RuntimeError(f"ECU {address:#04x} did not answer fast init")
        from ..cps.collector import Segment

        t_start = self.vehicle.clock.now()
        values: Dict[str, str] = {}
        while self.vehicle.clock.now() - t_start < duration_s:
            for group in ecu.kwp_groups.values():
                response = self.tester.request(
                    kwp2000.encode_read_by_local_id(group.local_id), address
                )
                if response is None or is_negative_response(response):
                    continue
                __, records = kwp2000.decode_read_response(response)
                for record in records:
                    if record.position >= len(group.measurements):
                        continue
                    measurement = group.measurements[record.position]
                    formula = kwp2000.formula_for_type(record.formula_type)
                    value = formula((record.x0, record.x1))
                    decimals = _decimals_for_unit(measurement.unit or formula.unit)
                    values[measurement.name] = (
                        f"{value:.{decimals}f} {measurement.unit or formula.unit}".rstrip()
                    )
            self.video.record(self._render(values, ecu.name))
            self.vehicle.clock.advance(self.poll_interval_s)
        self.segments.append(
            Segment("live", ecu.name, "Measuring Blocks", t_start, self.vehicle.clock.now())
        )

    def collect(self, duration_per_ecu_s: float = 30.0):
        """Full session over every ECU; returns (capture, messages)."""
        from ..cps.collector import Capture

        for address in self.vehicle.ecus:
            self.read_ecu(address, duration_per_ecu_s)
        messages = to_assembled_messages(parse_capture(self.vehicle.bus.capture))
        capture = Capture(
            model=self.vehicle.model,
            tool_name="VCDS (K-Line)",
            can_log=CanLog(),
            video=self.video.frames,
            clicks=[],
            segments=self.segments,
            tool_error_rate=0.02,
        )
        return capture, messages
