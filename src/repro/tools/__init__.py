"""Diagnostic-tool substrate: screens, professional tools, telematics apps."""

from .ui import Screen, ScreenBuilder, Widget, WidgetKind
from .diagtool import (
    ActuatorItem,
    DiagnosticTool,
    KwpBlockItem,
    TOOL_PROFILES,
    ToolProfile,
    UdsDataItem,
    make_tool_for_car,
)
from .telematics import IMPERIAL_PIDS, ObdTelematicsApp
from .kline_logger import (
    KLineDiagnosticSession,
    KLineVehicle,
    build_kline_vehicle,
)

__all__ = [
    "Screen",
    "ScreenBuilder",
    "Widget",
    "WidgetKind",
    "ActuatorItem",
    "DiagnosticTool",
    "KwpBlockItem",
    "TOOL_PROFILES",
    "ToolProfile",
    "UdsDataItem",
    "make_tool_for_car",
    "IMPERIAL_PIDS",
    "ObdTelematicsApp",
    "KLineDiagnosticSession",
    "KLineVehicle",
    "build_kline_vehicle",
]
