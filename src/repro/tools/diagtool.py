"""Simulated professional diagnostic tools.

A :class:`DiagnosticTool` models AUTEL 919 / LAUNCH X431 (handheld) and
VCDS / Techstream (laptop software): a menu-driven UI that, when driven to
"Read Data Stream" or "Active Test", speaks real UDS/KWP 2000 over the
vehicle's transport stack and renders physical values on screen using the
manufacturer's proprietary tables — which it holds internally and never
exposes, exactly like the hardened tools in the paper.

The tool is operated exclusively through :meth:`DiagnosticTool.tap` (the
robotic stylus) and observed exclusively through :attr:`screen` (the
cameras).  :meth:`tick` advances one poll cycle while a live-data screen is
open.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..diagnostics import kwp2000, uds
from ..diagnostics.messages import is_negative_response
from ..formulas import EnumFormula, Formula
from ..vehicle import SimulatedEcu, Vehicle
from ..vehicle.fleet import CAR_SPECS
from .ui import Screen, ScreenBuilder, Widget, WidgetKind


@dataclass(frozen=True)
class ToolProfile:
    """Per-product characteristics of a diagnostic tool."""

    name: str
    screen_width: int
    screen_height: int
    ocr_error_rate: float  # camera+OCR per-region error probability (Tab. 4)
    rows_per_page: int = 8
    poll_interval_s: float = 0.5
    #: UI rendering latency: a polled value appears on screen between
    #: ``display_latency_min_s`` and ``display_latency_max_s`` after the
    #: response — §4.3's noise source (i): "a time interval between the
    #: time receiving the response message and the time displaying the ESV".
    display_latency_min_s: float = 0.01
    display_latency_max_s: float = 0.16


#: The four tools of Tab. 3.  OCR error rates are calibrated so the Tab. 4
#: bench lands near the paper's 97.6 % (AUTEL) and 85.0 % (LAUNCH);
#: the laptop tools render crisp fonts and OCR them nearly perfectly.
TOOL_PROFILES: Dict[str, ToolProfile] = {
    "AUTEL 919": ToolProfile("AUTEL 919", 1024, 768, ocr_error_rate=0.024),
    "LAUNCH X431": ToolProfile("LAUNCH X431", 800, 480, ocr_error_rate=0.15),
    "VCDS": ToolProfile("VCDS", 1280, 800, ocr_error_rate=0.02),
    "Techstream": ToolProfile("Techstream", 1280, 800, ocr_error_rate=0.02),
}


def _decimals_for_unit(unit: str) -> int:
    if unit in ("rpm", "km", "km/h", "count", "s"):
        return 0
    if unit in ("V", "ms", "g/s", "l"):
        return 2
    return 1


@dataclass
class UdsDataItem:
    """Tool-database entry for one UDS-readable quantity."""

    ecu_name: str
    name: str
    did: int
    formula: Formula
    bytes_per_var: int
    unit: str
    decimals: int

    @property
    def is_enum(self) -> bool:
        return isinstance(self.formula, EnumFormula)

    def decode(self, value_bytes: bytes) -> Tuple[Tuple[int, ...], float]:
        """Raw variables and physical value from the response value field."""
        if self.formula.arity == 1:
            raw: Tuple[int, ...] = (int.from_bytes(value_bytes, "big"),)
        else:
            raw = tuple(value_bytes[: self.formula.arity])
        return raw, self.formula(raw)

    def render(self, value_bytes: bytes) -> str:
        raw, value = self.decode(value_bytes)
        if self.is_enum:
            return self.formula.label(int(raw[0]))  # type: ignore[attr-defined]
        text = f"{value:.{self.decimals}f}"
        return f"{text} {self.unit}".rstrip()


@dataclass
class KwpBlockItem:
    """Tool-database entry for one KWP 2000 measuring block."""

    ecu_name: str
    local_id: int
    name: str
    slot_names: List[str]
    slot_units: List[str]

    def render_slot(self, esv: kwp2000.KwpEsv) -> str:
        formula = kwp2000.formula_for_type(esv.formula_type)
        if isinstance(formula, EnumFormula):
            return formula.label(esv.x1)
        value = formula((esv.x0, esv.x1))
        unit = self.slot_units[esv.position] if esv.position < len(self.slot_units) else ""
        decimals = _decimals_for_unit(unit or formula.unit)
        return f"{value:.{decimals}f} {unit or formula.unit}".rstrip()


@dataclass
class ActuatorItem:
    """Tool-database entry for one active test."""

    ecu_name: str
    name: str
    identifier: int
    service: int  # 0x2F or 0x30
    control_state: bytes  # the tool's canned short-term-adjustment record


class DiagnosticTool:
    """A camera-and-stylus-operated diagnostic tool bound to one vehicle."""

    def __init__(
        self,
        profile: ToolProfile,
        vehicle: Vehicle,
        security_masks: Optional[Dict[str, int]] = None,
    ) -> None:
        self.profile = profile
        self.vehicle = vehicle
        self.clock = vehicle.clock
        self.security_masks = security_masks or {}
        self.uds_items: List[UdsDataItem] = []
        self.kwp_items: List[KwpBlockItem] = []
        self.actuator_items: List[ActuatorItem] = []
        self._endpoints: Dict[str, object] = {}
        self._screen: Screen = Screen("boot", "Booting...")
        self._state = "home"
        self._current_ecu: Optional[str] = None
        self._page = 0
        self._selection: List[object] = []  # items ticked on the select screen
        self._live_items: List[object] = []
        self._live_values: Dict[str, Widget] = {}
        self._last_test: str = ""
        self.tap_log: List[Tuple[float, str]] = []
        # Display pipeline: updates land on screen after a small random
        # rendering latency.  (apply_at, widget, text), flushed by
        # :meth:`flush_display`.
        self._pending_updates: List[Tuple[float, Widget, str]] = []
        self._latency_rng = random.Random(0xD15B1A)
        self._show_home()

    # ----------------------------------------------------------- tool database

    def load_vehicle_database(self) -> None:
        """Populate the tool's proprietary tables from the vehicle's ECUs.

        In reality the manufacturer ships these tables inside the tool; in
        the simulation we copy them from the ECU definitions — the
        reverse-engineering pipeline never sees either side.
        """
        for ecu in self.vehicle.ecus:
            for point in ecu.uds_data_points.values():
                self.uds_items.append(
                    UdsDataItem(
                        ecu_name=ecu.name,
                        name=point.name,
                        did=point.did,
                        formula=point.formula,
                        bytes_per_var=point.bytes_per_var,
                        unit=point.unit or point.formula.unit,
                        decimals=_decimals_for_unit(point.unit or point.formula.unit),
                    )
                )
            for group in ecu.kwp_groups.values():
                self.kwp_items.append(
                    KwpBlockItem(
                        ecu_name=ecu.name,
                        local_id=group.local_id,
                        name=group.name,
                        slot_names=[m.name for m in group.measurements],
                        slot_units=[m.unit for m in group.measurements],
                    )
                )
            for actuator in ecu.actuators.values():
                state = bytes([0x05, 0x01] + [0x00] * max(0, actuator.state_length - 2))
                self.actuator_items.append(
                    ActuatorItem(
                        ecu_name=ecu.name,
                        name=actuator.name,
                        identifier=actuator.identifier,
                        service=ecu.ecr_service,
                        control_state=state,
                    )
                )

    # ------------------------------------------------------------------ screen

    @property
    def screen(self) -> Screen:
        return self._screen

    @property
    def state(self) -> str:
        return self._state

    def tap(self, x: int, y: int) -> bool:
        """Stylus tap at screen coordinates; returns True if a widget fired."""
        widget = self._screen.widget_at(x, y)
        self.tap_log.append((self.clock.now(), widget.text if widget else ""))
        if widget is None or widget.on_tap is None:
            return False
        widget.on_tap()
        return True

    # ------------------------------------------------------------- transports

    def _endpoint(self, ecu_name: str):
        if ecu_name not in self._endpoints:
            self._endpoints[ecu_name] = self.vehicle.tester_endpoint(
                ecu_name, tester=self.profile.name
            )
        return self._endpoints[ecu_name]

    def _exchange(self, ecu_name: str, request: bytes) -> Optional[bytes]:
        endpoint = self._endpoint(ecu_name)
        endpoint.send(request)
        response = endpoint.receive()
        # NRC 0x78 (requestCorrectlyReceived-ResponsePending): the real
        # response follows; keep draining, bounded against broken ECUs.
        retries = 0
        while (
            response is not None
            and len(response) >= 3
            and response[0] == 0x7F
            and response[2] == 0x78
            and retries < 8
        ):
            response = endpoint.receive()
            retries += 1
        return response

    def _unlock_security(self, ecu_name: str) -> bool:
        """Extended session + seed/key unlock (the tool knows the key rule)."""
        mask = self.security_masks.get(ecu_name)
        self._exchange(ecu_name, uds.encode_session_control(uds.SessionType.EXTENDED))
        if mask is None:
            return True
        response = self._exchange(ecu_name, uds.encode_security_access_request_seed())
        if response is None or is_negative_response(response):
            return False
        seed = int.from_bytes(response[2:4], "big")
        if seed == 0:
            return True  # already unlocked
        key = (seed ^ mask) & 0xFFFF
        response = self._exchange(
            ecu_name, uds.encode_security_access_send_key(0x01, key.to_bytes(2, "big"))
        )
        return response is not None and not is_negative_response(response)

    # ------------------------------------------------------------- navigation

    def _show_home(self) -> None:
        builder = ScreenBuilder(
            "home",
            f"{self.profile.name} - Select System",
            self.profile.screen_width,
            self.profile.screen_height,
        )
        for ecu in self.vehicle.ecus:
            builder.add_row(
                WidgetKind.BUTTON, ecu.name, on_tap=lambda n=ecu.name: self._enter_ecu(n)
            )
        builder.add_row(WidgetKind.ICON_BUTTON, "", icon="settings-gear")
        self._screen = builder.screen
        self._state = "home"
        self._current_ecu = None

    def _enter_ecu(self, ecu_name: str) -> None:
        self._current_ecu = ecu_name
        identification = self._read_identification(ecu_name)
        builder = ScreenBuilder(
            "ecu_menu",
            f"{ecu_name} - Functions",
            self.profile.screen_width,
            self.profile.screen_height,
        )
        if identification:
            builder.add_row(WidgetKind.LABEL, identification)
        builder.add_row(WidgetKind.BUTTON, "Read Data Stream", on_tap=self._enter_datastream)
        if any(a.ecu_name == ecu_name for a in self.actuator_items):
            builder.add_row(WidgetKind.BUTTON, "Active Test", on_tap=self._enter_activetest)
        builder.add_row(
            WidgetKind.BUTTON, "Read Trouble Codes", on_tap=self._read_dtcs
        )
        builder.add_row(
            WidgetKind.BUTTON, "Clear Trouble Codes", on_tap=self._clear_dtcs
        )
        builder.add_row(WidgetKind.BUTTON, "ECU Coding", on_tap=self._enter_coding)
        builder.add_row(WidgetKind.BUTTON, "Back", on_tap=self._show_home)
        builder.add_row(WidgetKind.ICON_BUTTON, "", icon="home")
        self._screen = builder.screen
        self._state = "ecu_menu"

    def _read_identification(self, ecu_name: str) -> str:
        """Read the ECU's identification on connect, as real tools do.

        KWP ECUs answer readEcuIdentification (0x1A); UDS ECUs answer the
        standard identification DIDs.  These long ASCII responses are the
        multi-frame transfers that dominate real diagnostic traffic
        (Tab. 9).
        """
        has_kwp = any(i.ecu_name == ecu_name for i in self.kwp_items)
        if has_kwp:
            response = self._exchange(ecu_name, b"\x1a\x9b")
            if response and not is_negative_response(response):
                return response[2:].decode("ascii", errors="replace")
            return ""
        response = self._exchange(
            ecu_name, uds.encode_read_data_by_identifier([0xF190])
        )
        if response and not is_negative_response(response):
            return response[3:].decode("ascii", errors="replace")
        return ""

    # ------------------------------------------------------------ OBD anchor

    def obd_supported(self) -> bool:
        """Whether the vehicle exposes legislated OBD-II PIDs."""
        return any(ecu.obd_pids for ecu in self.vehicle.ecus)

    def obd_anchor_tick(self) -> None:
        """One round of the §9.4 pre-session OBD-II reads.

        The tool polls the engine's legislated PIDs and shows their values
        (computed with the *public* SAE formulas) on an "OBD quick check"
        screen.  Because those formulas are public, the offline pipeline
        can anchor the video clock to the CAN clock on these reads.
        """
        from ..diagnostics import obd2

        ecu = next((e for e in self.vehicle.ecus if e.obd_pids), None)
        if ecu is None:
            return
        if self._state != "obd_anchor":
            builder = ScreenBuilder(
                "live",  # camera-b extraction treats it like any live screen
                "OBD-II Quick Check",
                self.profile.screen_width,
                self.profile.screen_height,
            )
            self._live_values = {}
            for pid in sorted(ecu.obd_pids):
                definition = obd2.pid_definition(pid)
                __, value_widget = builder.add_pair(definition.name, "---")
                self._live_values[definition.name] = value_widget
            builder.add_row(WidgetKind.BUTTON, "Back", on_tap=self._show_home)
            self._screen = builder.screen
            self._state = "obd_anchor"
        for pid in sorted(ecu.obd_pids):
            response = self._exchange(ecu.name, obd2.encode_request(pid))
            if response is None or is_negative_response(response):
                continue
            __, got_pid, data = obd2.decode_response(response)
            definition = obd2.pid_definition(got_pid)
            value = obd2.physical_value(got_pid, data)
            self._queue_update(
                self._live_values[definition.name],
                f"{value:.1f} {definition.formula.unit}".rstrip(),
            )

    # ----------------------------------------------------------------- DTCs

    def _uses_kwp(self, ecu_name: str) -> bool:
        return any(i.ecu_name == ecu_name for i in self.kwp_items)

    def _read_dtcs(self) -> None:
        """The "Read Trouble Codes" screen."""
        from ..diagnostics import dtc as dtc_codec

        ecu_name = self._current_ecu
        if self._uses_kwp(ecu_name):
            response = self._exchange(ecu_name, dtc_codec.encode_kwp_read_dtcs())
            decode = dtc_codec.decode_kwp_dtc_response
        else:
            response = self._exchange(ecu_name, dtc_codec.encode_uds_read_dtcs())
            decode = dtc_codec.decode_uds_dtc_response
        codes = []
        if response is not None and not is_negative_response(response):
            try:
                codes = decode(response)
            except Exception:
                codes = []
        builder = ScreenBuilder(
            "dtc_list",
            f"{ecu_name} - Trouble Codes ({len(codes)})",
            self.profile.screen_width,
            self.profile.screen_height,
        )
        for code in codes:
            description = dtc_codec.KNOWN_DTCS.get(code.code, "Unknown fault")
            builder.add_row(WidgetKind.LABEL, f"{code.code}: {description}")
        if not codes:
            builder.add_row(WidgetKind.LABEL, "No trouble codes stored")
        builder.add_row(
            WidgetKind.BUTTON, "Back", on_tap=lambda: self._enter_ecu(ecu_name)
        )
        self._screen = builder.screen
        self._state = "dtc_list"

    def _clear_dtcs(self) -> None:
        from ..diagnostics import dtc as dtc_codec

        ecu_name = self._current_ecu
        if self._uses_kwp(ecu_name):
            request = bytes([dtc_codec.KWP_CLEAR_DIAGNOSTIC_INFORMATION, 0xFF, 0x00])
        else:
            request = dtc_codec.encode_uds_clear()
        response = self._exchange(ecu_name, request)
        ok = response is not None and not is_negative_response(response)
        self._last_test = f"Clear DTCs {'OK' if ok else 'FAILED'}"
        self._enter_ecu(ecu_name)

    # ---------------------------------------------------------------- coding

    CODING_DID = 0x0600

    def _enter_coding(self) -> None:
        """The "ECU Coding" screen: show the coding word, offer a recode."""
        ecu_name = self._current_ecu
        if self._uses_kwp(ecu_name):
            # KWP coding uses a different flow; the menu entry is inert on
            # KWP ECUs (mirrors tools that grey it out).
            return
        response = self._exchange(
            ecu_name, uds.encode_read_data_by_identifier([self.CODING_DID])
        )
        coding = b""
        if response is not None and not is_negative_response(response):
            coding = response[3:]
        builder = ScreenBuilder(
            "coding",
            f"{ecu_name} - ECU Coding",
            self.profile.screen_width,
            self.profile.screen_height,
        )
        builder.add_row(WidgetKind.LABEL, f"Current coding: {coding.hex(' ').upper()}")
        builder.add_row(
            WidgetKind.BUTTON,
            "Recode",
            on_tap=lambda: self._write_coding(ecu_name, coding),
        )
        builder.add_row(
            WidgetKind.BUTTON, "Back", on_tap=lambda: self._enter_ecu(ecu_name)
        )
        self._screen = builder.screen
        self._state = "coding"

    def _write_coding(self, ecu_name: str, current: bytes) -> None:
        """Write the coding word back with the last byte incremented."""
        if not current:
            return
        self._unlock_security(ecu_name)
        new_coding = current[:-1] + bytes([(current[-1] + 1) & 0xFF])
        request = (
            bytes([0x2E]) + self.CODING_DID.to_bytes(2, "big") + new_coding
        )
        response = self._exchange(ecu_name, request)
        ok = response is not None and not is_negative_response(response)
        self._last_test = f"Recode {'OK' if ok else 'FAILED'}"
        self._enter_coding()

    def _items_for_current_ecu(self) -> List[object]:
        items: List[object] = [
            i for i in self.uds_items if i.ecu_name == self._current_ecu
        ]
        items += [i for i in self.kwp_items if i.ecu_name == self._current_ecu]
        return items

    def _enter_datastream(self) -> None:
        self._selection = []
        self._page = 0
        self._render_datastream_select()

    def _render_datastream_select(self) -> None:
        items = self._items_for_current_ecu()
        per_page = self.profile.rows_per_page
        pages = max(1, -(-len(items) // per_page))
        self._page %= pages
        builder = ScreenBuilder(
            "datastream_select",
            f"{self._current_ecu} - Read Data Stream ({self._page + 1}/{pages})",
            self.profile.screen_width,
            self.profile.screen_height,
        )
        start = self._page * per_page
        for item in items[start : start + per_page]:
            label = item.name if hasattr(item, "name") else str(item)
            prefix = "[x] " if item in self._selection else "[ ] "
            builder.add_row(
                WidgetKind.BUTTON,
                prefix + label,
                on_tap=lambda it=item: self._toggle_item(it),
            )
        if pages > 1:
            builder.add_row(WidgetKind.BUTTON, "Next Page", on_tap=self._next_page)
        builder.add_row(WidgetKind.BUTTON, "Start", on_tap=self._start_live)
        builder.add_row(WidgetKind.BUTTON, "Back", on_tap=lambda: self._enter_ecu(self._current_ecu))
        self._screen = builder.screen
        self._state = "datastream_select"

    def _toggle_item(self, item: object) -> None:
        if item in self._selection:
            self._selection.remove(item)
        else:
            self._selection.append(item)
        self._render_datastream_select()

    def _next_page(self) -> None:
        self._page += 1
        self._render_datastream_select()

    def _start_live(self) -> None:
        if not self._selection:
            return
        self._live_items = list(self._selection)
        builder = ScreenBuilder(
            "live",
            f"{self._current_ecu} - Data Stream",
            self.profile.screen_width,
            self.profile.screen_height,
        )
        self._live_values = {}
        for item in self._live_items:
            if isinstance(item, UdsDataItem):
                __, value_widget = builder.add_pair(item.name, "---")
                self._live_values[item.name] = value_widget
            else:
                for slot_name in item.slot_names:
                    __, value_widget = builder.add_pair(slot_name, "---")
                    self._live_values[slot_name] = value_widget
        builder.add_row(WidgetKind.BUTTON, "Back", on_tap=lambda: self._enter_ecu(self._current_ecu))
        self._screen = builder.screen
        self._state = "live"
        self.tick()

    # ------------------------------------------------------------------ live

    def tick(self) -> None:
        """One poll cycle: query the selected items and refresh the screen.

        The clock is *not* advanced here — the operator (the data
        collector) owns pacing, so that a screenshot taken right after a
        tick carries the same timestamp as the responses it displays.
        """
        if self._state != "live":
            return
        # Keep the extended session alive: real tools interleave
        # TesterPresent (0x3E) with the data-stream polling.
        self._ticks_since_keepalive = getattr(self, "_ticks_since_keepalive", 0) + 1
        if self._ticks_since_keepalive >= 4:
            self._ticks_since_keepalive = 0
            ecus = {i.ecu_name for i in self._live_items}
            for ecu_name in ecus:
                self._exchange(ecu_name, uds.encode_tester_present())
        uds_batch = [i for i in self._live_items if isinstance(i, UdsDataItem)]
        # Two DIDs per request: short reads stay single-frame while wider
        # values spill into multi-frame transport, matching the Tab. 9 mix.
        for start in range(0, len(uds_batch), 2):
            chunk = uds_batch[start : start + 2]
            dids = [item.did for item in chunk]
            response = self._exchange(
                chunk[0].ecu_name, uds.encode_read_data_by_identifier(dids)
            )
            if response is None or is_negative_response(response):
                continue
            for did, value_bytes in uds.decode_read_response(dids, response):
                item = next(i for i in chunk if i.did == did)
                self._queue_update(self._live_values[item.name], item.render(value_bytes))
        for item in self._live_items:
            if not isinstance(item, KwpBlockItem):
                continue
            response = self._exchange(
                item.ecu_name, kwp2000.encode_read_by_local_id(item.local_id)
            )
            if response is None or is_negative_response(response):
                continue
            __, records = kwp2000.decode_read_response(response)
            for esv in records:
                if esv.position < len(item.slot_names):
                    slot = item.slot_names[esv.position]
                    self._queue_update(self._live_values[slot], item.render_slot(esv))

    def _queue_update(self, widget: Widget, text: str) -> None:
        """Schedule a screen update after the rendering latency."""
        latency = self._latency_rng.uniform(
            self.profile.display_latency_min_s, self.profile.display_latency_max_s
        )
        self._pending_updates.append((self.clock.now() + latency, widget, text))

    def flush_display(self) -> None:
        """Apply every queued update whose render time has passed.

        Called by whoever paces the session (the data collector) before a
        screenshot; anything still in flight stays at its previous value —
        the stale-read effect the paper's §4.3 traces its coefficient
        noise to.
        """
        now = self.clock.now()
        remaining: List[Tuple[float, Widget, str]] = []
        for apply_at, widget, text in self._pending_updates:
            if apply_at <= now:
                widget.text = text
            else:
                remaining.append((apply_at, widget, text))
        self._pending_updates = remaining

    # ----------------------------------------------------------- active test

    def _enter_activetest(self) -> None:
        builder = ScreenBuilder(
            "activetest_select",
            f"{self._current_ecu} - Active Test",
            self.profile.screen_width,
            self.profile.screen_height,
        )
        if self._last_test:
            builder.add_row(WidgetKind.LABEL, f"Last test: {self._last_test}")
        for item in self.actuator_items:
            if item.ecu_name != self._current_ecu:
                continue
            builder.add_row(
                WidgetKind.BUTTON, item.name, on_tap=lambda it=item: self._run_test(it)
            )
        builder.add_row(WidgetKind.BUTTON, "Back", on_tap=lambda: self._enter_ecu(self._current_ecu))
        self._screen = builder.screen
        self._state = "activetest_select"

    def _run_test(self, item: ActuatorItem) -> None:
        """The three-message IO-control procedure of §4.5."""
        if not self._unlock_security(item.ecu_name):
            self._last_test = f"{item.name} FAILED (security)"
            self._enter_activetest()
            return
        param = uds.IoControlParameter
        if item.service == uds.UdsService.IO_CONTROL_BY_IDENTIFIER:
            freeze = uds.encode_io_control(item.identifier, param.FREEZE_CURRENT_STATE)
            adjust = uds.encode_io_control(
                item.identifier, param.SHORT_TERM_ADJUSTMENT, item.control_state
            )
            release = uds.encode_io_control(item.identifier, param.RETURN_CONTROL_TO_ECU)
        else:
            freeze = kwp2000.encode_io_control_local(
                item.identifier, bytes([param.FREEZE_CURRENT_STATE])
            )
            adjust = kwp2000.encode_io_control_local(
                item.identifier,
                bytes([param.SHORT_TERM_ADJUSTMENT]) + item.control_state,
            )
            release = kwp2000.encode_io_control_local(
                item.identifier, bytes([param.RETURN_CONTROL_TO_ECU])
            )
        ok = True
        for message, wait in ((freeze, 0.2), (adjust, 2.0), (release, 0.2)):
            response = self._exchange(item.ecu_name, message)
            ok = ok and response is not None and not is_negative_response(response)
            self.clock.advance(wait)
        self._last_test = f"{item.name} {'OK' if ok else 'FAILED'}"
        self._enter_activetest()


def make_tool_for_car(key: str, vehicle: Vehicle) -> DiagnosticTool:
    """Instantiate the Tab. 3 diagnostic tool for fleet car ``key``."""
    spec = CAR_SPECS[key]
    profile = TOOL_PROFILES[spec.tool]
    masks = {
        ecu.name: ecu.security.mask
        for ecu in vehicle.ecus
        if ecu.security.required
    }
    tool = DiagnosticTool(profile, vehicle, security_masks=masks)
    tool.load_vehicle_database()
    tool._show_home()
    return tool
