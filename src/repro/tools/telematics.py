"""OBD-based telematics app simulator.

§4.2 of the paper drives the Android app "ChevroSys Scan Free" against an
OBD-II vehicle simulator to validate formula recovery against the public
SAE J1979 ground truth.  :class:`ObdTelematicsApp` is that app: a phone
screen showing live PID read-outs, polling the simulator through a
Bluetooth/WiFi OBD dongle (modelled as a plain ISO-TP endpoint).

The app picks *one* unit system per PID (the paper notes this is why only
one of the two SAE formulas per PID is recoverable).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..diagnostics import obd2
from ..vehicle.obd_sim import ObdVehicleSimulator
from .ui import Screen, ScreenBuilder, Widget, WidgetKind

#: PIDs the app displays in imperial units (mirrors the paper's Tab. 5,
#: where speed/temperature/pressure resolve to the imperial variant).
IMPERIAL_PIDS = frozenset({0x0D, 0x05, 0x0B})


class ObdTelematicsApp:
    """A minimal OBD dashboard app bound to an OBD-II vehicle simulator."""

    def __init__(
        self,
        simulator: ObdVehicleSimulator,
        pids: Optional[Iterable[int]] = None,
        name: str = "ChevroSys Scan Free",
        poll_interval_s: float = 0.5,
    ) -> None:
        self.simulator = simulator
        self.clock = simulator.clock
        self.name = name
        self.poll_interval_s = poll_interval_s
        self.pids: List[int] = list(pids) if pids is not None else list(simulator.pids)
        self.endpoint = simulator.tester_endpoint(name)
        self._values: Dict[int, Widget] = {}
        self._screen = self._build_screen()

    def _build_screen(self) -> Screen:
        builder = ScreenBuilder(f"{self.name}-dash", f"{self.name} - Live Data", 480, 960)
        for pid in self.pids:
            definition = obd2.pid_definition(pid)
            __, value_widget = builder.add_pair(definition.name, "---")
            self._values[pid] = value_widget
        return builder.screen

    @property
    def screen(self) -> Screen:
        return self._screen

    def _unit_for(self, pid: int) -> str:
        definition = obd2.pid_definition(pid)
        if pid in IMPERIAL_PIDS and definition.alt_formula is not None:
            return definition.alt_formula.unit
        return definition.formula.unit

    def tick(self) -> None:
        """Poll every displayed PID once and refresh the screen."""
        for pid in self.pids:
            self.endpoint.send(obd2.encode_request(pid))
            response = self.endpoint.receive()
            if response is None:
                continue
            __, resp_pid, data = obd2.decode_response(response)
            if resp_pid != pid:
                continue
            value = obd2.physical_value(pid, data, imperial=pid in IMPERIAL_PIDS)
            decimals = 0 if pid in (0x0C, 0x1F, 0x21) else 1
            self._values[pid].text = f"{value:.{decimals}f} {self._unit_for(pid)}".rstrip()
        self.clock.advance(self.poll_interval_s)
