"""ECR (ECU-control-record) analysis (§4.5).

From the IO-control request stream this stage recovers the control
*procedure* the paper documents: every component actuation is a
three-message exchange —

1. ``freeze current state`` (IO parameter 0x02),
2. ``short term adjustment`` (0x03, carrying the control-state bytes),
3. ``return control to ECU`` (0x00),

each acknowledged by a positive response.  Procedures are grouped per
identifier (DID / local id) and, when the collection log is available,
labelled with the actuator name clicked on the tool's UI at that time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..diagnostics.uds import IoControlParameter
from .fields import IoControlEvent


@dataclass
class EcrProcedure:
    """One recovered freeze → adjust → return-control exchange."""

    service: int  # 0x2F or 0x30
    identifier: int  # DID or local identifier
    control_state: bytes  # state bytes of the short-term adjustment
    t_start: float
    t_end: float
    complete: bool  # all three steps present and positively acknowledged
    label: str = ""  # semantic name, once attached

    @property
    def request_pattern(self) -> str:
        """The generalized request format of §4.5."""
        if self.service == 0x2F:
            did = f"{self.identifier:04X}"
            return (
                f"2F {did[:2]} {did[2:]} 02 | "
                f"2F {did[:2]} {did[2:]} 03 {self.control_state.hex(' ').upper()} | "
                f"2F {did[:2]} {did[2:]} 00"
            )
        lid = f"{self.identifier:02X}"
        return (
            f"30 {lid} 02 | "
            f"30 {lid} 03 {self.control_state.hex(' ').upper()} | "
            f"30 {lid} 00"
        )


def extract_procedures(events: Sequence[IoControlEvent]) -> List[EcrProcedure]:
    """Scan IO-control events for the three-step control pattern.

    Events for the same (service, identifier) are processed in time order;
    a freeze opens a candidate procedure, an adjustment fills it, and a
    return-control closes it.  Incomplete or negatively-acknowledged
    exchanges are still reported (``complete=False``) so the bench can show
    the paper's "all positive responses" criterion.
    """
    by_target: Dict[Tuple[int, int], List[IoControlEvent]] = {}
    for event in sorted(events, key=lambda e: e.timestamp):
        by_target.setdefault((event.service, event.identifier), []).append(event)

    procedures: List[EcrProcedure] = []
    for (service, identifier), stream in by_target.items():
        current: Optional[dict] = None
        for event in stream:
            if event.io_parameter == IoControlParameter.FREEZE_CURRENT_STATE:
                if current is not None:
                    procedures.append(_close(service, identifier, current))
                current = {
                    "t_start": event.timestamp,
                    "freeze_ok": event.positive,
                    "adjust": None,
                    "adjust_ok": False,
                    "return_ok": False,
                    "t_end": event.timestamp,
                }
            elif event.io_parameter == IoControlParameter.SHORT_TERM_ADJUSTMENT:
                if current is None:
                    current = {
                        "t_start": event.timestamp,
                        "freeze_ok": False,
                        "adjust": None,
                        "adjust_ok": False,
                        "return_ok": False,
                        "t_end": event.timestamp,
                    }
                current["adjust"] = event.control_state
                current["adjust_ok"] = event.positive
                current["t_end"] = event.timestamp
            elif event.io_parameter == IoControlParameter.RETURN_CONTROL_TO_ECU:
                if current is None:
                    continue
                current["return_ok"] = event.positive
                current["t_end"] = event.timestamp
                procedures.append(_close(service, identifier, current))
                current = None
        if current is not None:
            procedures.append(_close(service, identifier, current))
    procedures.sort(key=lambda p: p.t_start)
    return procedures


def _close(service: int, identifier: int, state: dict) -> EcrProcedure:
    return EcrProcedure(
        service=service,
        identifier=identifier,
        control_state=state["adjust"] or b"",
        t_start=state["t_start"],
        t_end=state["t_end"],
        complete=bool(
            state["freeze_ok"] and state["adjust_ok"] and state["return_ok"]
        ),
    )


def attach_semantics(procedures: Sequence[EcrProcedure], segments) -> None:
    """Label each procedure with the actuator clicked at that time.

    ``segments`` are the collector's click-log segments; an active-test
    segment whose window contains the procedure supplies the name shown on
    the tool's UI.
    """
    for procedure in procedures:
        for segment in segments:
            if segment.kind != "active_test":
                continue
            if segment.t_start - 0.5 <= procedure.t_start <= segment.t_end + 0.5:
                procedure.label = segment.label
                break
