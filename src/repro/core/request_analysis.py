"""Request-message analysis (§3.4): semantic matching.

The DID / local-identifier values in request messages are manufacturer
defined; their *meaning* is recovered by associating them with the text
shown on the tool's UI while they were being read.

Matching works per capture segment (one live-data session):

* **numeric ESVs** — each raw series (per identifier) is correlated against
  each on-screen value series after nearest-timestamp pairing; identifiers
  and labels are greedily assigned by descending absolute correlation.
  Correlation is computed over several raw *features* (each variable, the
  variable product, and the big-endian integer) because the raw-to-physical
  formula is still unknown at this point.
* **enum ESVs** — state labels ("Open"/"Closed") carry no numbers, so
  identifiers are matched by *change-time agreement*: the times the raw
  value flips should coincide with the times the displayed text flips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .fields import EsvObservation
from .screenshot import UiSeries


@dataclass(frozen=True)
class SemanticMatch:
    """One identifier ↔ UI-label association."""

    identifier: str
    label: str
    score: float
    method: str  # "correlation" | "change-times"


def _pair_by_time(
    xs: Sequence[Tuple[float, float]],
    ys: Sequence[Tuple[float, float]],
    max_gap_s: float = 1.5,
) -> List[Tuple[float, float]]:
    """Nearest-timestamp pairing of two (t, value) series."""
    pairs: List[Tuple[float, float]] = []
    if not xs or not ys:
        return pairs
    y_index = 0
    for t, x in xs:
        while y_index + 1 < len(ys) and abs(ys[y_index + 1][0] - t) <= abs(ys[y_index][0] - t):
            y_index += 1
        if abs(ys[y_index][0] - t) <= max_gap_s:
            pairs.append((x, ys[y_index][1]))
    return pairs


def _pearson(pairs: Sequence[Tuple[float, float]]) -> float:
    if len(pairs) < 4:
        return 0.0
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 1e-12 or var_y <= 1e-12:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _raw_features(
    observations: Sequence[EsvObservation],
) -> Dict[str, List[Tuple[float, float]]]:
    """Candidate raw time series: per variable, product, and full integer."""
    features: Dict[str, List[Tuple[float, float]]] = {}
    for obs in observations:
        variables = obs.variables()
        for index, value in enumerate(variables):
            features.setdefault(f"var{index}", []).append((obs.timestamp, float(value)))
        if len(variables) >= 2:
            product = 1.0
            for value in variables:
                product *= value
            features.setdefault("product", []).append((obs.timestamp, product))
        features.setdefault("int", []).append((obs.timestamp, float(obs.as_int())))
    return features


def correlation_score(
    observations: Sequence[EsvObservation], series: UiSeries, max_gap_s: float = 1.5
) -> float:
    """Best |Pearson correlation| between any raw feature and the UI series."""
    y_points = series.values()
    best = 0.0
    for feature in _raw_features(observations).values():
        score = abs(_pearson(_pair_by_time(feature, y_points, max_gap_s)))
        best = max(best, score)
    return best


# ----------------------------------------------------------------- enum match


def _change_times(points: Sequence[Tuple[float, object]]) -> List[float]:
    times: List[float] = []
    previous: Optional[object] = None
    for t, value in points:
        if previous is not None and value != previous:
            times.append(t)
        previous = value
    return times


def change_time_score(
    observations: Sequence[EsvObservation], series: UiSeries, tolerance_s: float = 1.5
) -> float:
    """Jaccard-style agreement between raw flips and displayed-text flips."""
    raw_changes = _change_times([(o.timestamp, o.raw_bytes) for o in observations])
    text_changes = _change_times([(s.timestamp, s.text) for s in series.samples])
    if not raw_changes or not text_changes:
        return 0.0
    matched = 0
    used: set = set()
    for t in raw_changes:
        best = None
        for index, u in enumerate(text_changes):
            if index in used or abs(u - t) > tolerance_s:
                continue
            if best is None or abs(u - t) < abs(text_changes[best] - t):
                best = index
        if best is not None:
            used.add(best)
            matched += 1
    return matched / max(len(raw_changes), len(text_changes))


# -------------------------------------------------------------- greedy match


def match_semantics(
    grouped: Dict[str, List[EsvObservation]],
    ui_series: Dict[str, UiSeries],
    window: Optional[Tuple[float, float]] = None,
    min_score: float = 0.35,
) -> List[SemanticMatch]:
    """Associate identifiers with labels inside one time window.

    Greedy max-score assignment: compute all pair scores, then repeatedly
    take the highest-scoring unassigned (identifier, label) pair.
    """
    def in_window(t: float) -> bool:
        return window is None or window[0] <= t <= window[1]

    candidates: List[Tuple[float, str, str, str]] = []
    for identifier, observations in grouped.items():
        observations = [o for o in observations if in_window(o.timestamp)]
        if len(observations) < 3:
            continue
        for label, series in ui_series.items():
            samples_in = [s for s in series.samples if in_window(s.timestamp)]
            if len(samples_in) < 3:
                continue
            windowed = UiSeries(label, samples_in)
            if windowed.is_numeric:
                score = correlation_score(observations, windowed)
                method = "correlation"
            else:
                score = change_time_score(observations, windowed)
                method = "change-times"
            if score >= min_score:
                candidates.append((score, identifier, label, method))

    candidates.sort(reverse=True)
    matches: List[SemanticMatch] = []
    used_identifiers: set = set()
    used_labels: set = set()
    for score, identifier, label, method in candidates:
        if identifier in used_identifiers or label in used_labels:
            continue
        used_identifiers.add(identifier)
        used_labels.add(label)
        matches.append(SemanticMatch(identifier, label, score, method))
    return matches
