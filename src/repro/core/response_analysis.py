"""Response-message analysis (§3.5): dataset construction, Tab. 2 scaling,
and formula inference via genetic programming.

Three steps, mirroring the paper:

1. **Pairing** — every raw ESV observation is paired with the UI value
   whose timestamp is nearest (``time_traffic`` ↔ ``time_ui``).
2. **Pre/post-scaling (Tab. 2)** — GP behaves best when inputs and targets
   lie in roughly [1, 10); both X and Y are rescaled by powers of ten
   before evolution and the factors are folded back into the reported
   formula afterwards.  X values, being raw integers ≥ 1, are only ever
   reduced.
3. **GP inference** — evolution over the 14-function set; for UDS values
   wider than one byte two interpretations are tried (one big-endian
   integer vs one variable per byte — the paper's Car R engine speed shows
   manufacturers use both) and the better fit wins.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..formulas import Formula
from ..observability.trace import get_active
from .fields import EsvObservation
from .gp import (
    FitnessCache,
    GeneticProgrammer,
    GpConfig,
    Node,
    drive,
    fold_constants,
    tree_from_tokens,
    tree_to_tokens,
)
from .screenshot import UiSeries


@dataclass
class PairedDataset:
    """Time-aligned (X, Y) samples for one ESV."""

    x_rows: List[Tuple[float, ...]]
    y_values: List[float]

    def __len__(self) -> int:
        return len(self.x_rows)

    @property
    def n_variables(self) -> int:
        return len(self.x_rows[0]) if self.x_rows else 0


def build_dataset(
    observations: Sequence[EsvObservation],
    series: UiSeries,
    interpretation: str = "auto",
    max_gap_s: float = 1.5,
    adaptive_gap: bool = True,
) -> PairedDataset:
    """Pair raw observations with nearest-in-time UI values.

    ``interpretation`` selects how multi-byte UDS values become variables:
    ``"int"`` (one big-endian integer), ``"bytes"`` (one variable per
    byte), or KWP's fixed two-variable layout.  ``"auto"`` resolves to
    ``"int"`` here; :func:`infer_formula` tries both.

    ``adaptive_gap`` enables DP-Reverser's pairing guard (skip observations
    whose frame was filtered away instead of mispairing with a neighbour);
    disable it to reproduce the paper's plain nearest-timestamp pairing,
    whose residual mispairing noise is what the §4.4 baselines choke on.
    """
    samples = series.numeric_samples
    x_rows: List[Tuple[float, ...]] = []
    y_values: List[float] = []
    if not samples:
        return PairedDataset(x_rows, y_values)
    # Pair only when a frame genuinely belongs to the observation: tighter
    # than half the typical frame spacing, so an observation whose frame was
    # filtered out is skipped rather than paired with a neighbouring frame
    # showing a different value.
    if adaptive_gap and len(samples) >= 3:
        gaps = sorted(
            samples[i + 1].timestamp - samples[i].timestamp
            for i in range(len(samples) - 1)
        )
        median_gap = gaps[len(gaps) // 2]
        max_gap_s = min(max_gap_s, 0.6 * median_gap) if median_gap > 0 else max_gap_s
    sample_index = 0
    for obs in observations:
        while (
            sample_index + 1 < len(samples)
            and abs(samples[sample_index + 1].timestamp - obs.timestamp)
            <= abs(samples[sample_index].timestamp - obs.timestamp)
        ):
            sample_index += 1
        nearest = samples[sample_index]
        if abs(nearest.timestamp - obs.timestamp) > max_gap_s:
            continue
        if obs.protocol == "kwp" or interpretation == "bytes":
            xs = tuple(float(v) for v in obs.variables())
        else:
            xs = (float(obs.as_int()),)
        x_rows.append(xs)
        y_values.append(nearest.value)
    # A corrupted capture can yield a minority of observations with a
    # different byte count for the same ESV; keep only the dominant arity
    # so the dataset stays rectangular for scaling and GP.
    arities = {len(xs) for xs in x_rows}
    if len(arities) > 1:
        counts = Counter(len(xs) for xs in x_rows)
        dominant = counts.most_common(1)[0][0]
        kept = [
            (xs, y) for xs, y in zip(x_rows, y_values) if len(xs) == dominant
        ]
        x_rows = [xs for xs, __ in kept]
        y_values = [y for __, y in kept]
    return PairedDataset(x_rows, y_values)


# --------------------------------------------------------------- Tab. 2 scale


def table2_factor(magnitude: float, allow_enlarge: bool) -> float:
    """The Tab. 2 rescaling factor for a typical absolute value.

    Returns the multiplier applied to the data (e.g. values in 10^3..10^4
    are multiplied by 10^-3).  X values are integers ≥ 1, so they are only
    ever reduced (``allow_enlarge=False``).
    """
    if magnitude > 1e4:
        return 1e-4
    if magnitude > 1e3:
        return 1e-3
    if magnitude > 1e2:
        return 1e-2
    if magnitude > 10.0:
        return 1e-1
    if not allow_enlarge:
        return 1.0
    if magnitude >= 1.0:
        return 1.0
    if magnitude >= 0.1:
        return 10.0
    if magnitude >= 1e-2:
        return 1e2
    if magnitude >= 1e-3:
        return 1e3
    return 1e4


def _median_magnitude(values: Sequence[float]) -> float:
    magnitudes = sorted(abs(v) for v in values)
    if not magnitudes:
        return 1.0
    return magnitudes[len(magnitudes) // 2]


@dataclass
class ScaledDataset:
    """Dataset after Tab. 2 pre-processing, with the applied factors."""

    x_rows: List[Tuple[float, ...]]
    y_values: List[float]
    x_factors: Tuple[float, ...]
    y_factor: float


def prescale(dataset: PairedDataset) -> ScaledDataset:
    """Apply the Tab. 2 pre-processing to a paired dataset."""
    n_vars = dataset.n_variables
    x_factors = []
    for index in range(n_vars):
        column = [row[index] for row in dataset.x_rows]
        x_factors.append(table2_factor(_median_magnitude(column), allow_enlarge=False))
    y_factor = table2_factor(_median_magnitude(dataset.y_values), allow_enlarge=True)
    x_rows = [
        tuple(value * factor for value, factor in zip(row, x_factors))
        for row in dataset.x_rows
    ]
    y_values = [y * y_factor for y in dataset.y_values]
    return ScaledDataset(x_rows, y_values, tuple(x_factors), y_factor)


# ------------------------------------------------------------------ inference


@dataclass
class InferredFormula:
    """A recovered raw→physical formula with provenance."""

    formula: Formula  # maps *raw* variables to the displayed value
    description: str
    fitness: float  # MAE on the scaled training data
    interpretation: str  # "int" | "bytes" | "kwp"
    n_samples: int
    generations: int
    #: The inference engine that produced the math: ``"gp"`` or
    #: ``"linear"`` (a hybrid run tags each formula with whichever engine
    #: actually solved it).  Reports serialise this only when != "gp", so
    #: pure-GP output stays byte-identical to the pre-backend pipeline.
    backend: str = "gp"
    #: Ensemble agreement: the fraction of paired training samples this
    #: formula reproduces within the paper's §4.2 equivalence tolerance
    #: (:func:`repro.core.inference.sample_agreement`).  Stays at the 1.0
    #: default — and out of serialised reports — on the pure-GP path.
    confidence: float = 1.0

    def __call__(self, xs: Sequence[float]) -> float:
        return self.formula(xs)


class ScaledTreeFormula(Formula):
    """A recovered formula: constant-folded GP tree plus the Tab. 2 factors.

    Evaluates ``Y = f(X * xf) / yf`` through the tree's scalar fast path —
    exactly the operations the closure this class replaced applied, in the
    same order, so reports are byte-identical to the pre-class pipeline.
    A plain class (no closure) because recovered formulas now have to
    cross process boundaries (the process GP backend pickles them back to
    the parent) and run boundaries (the on-disk formula memo stores them
    as JSON via :meth:`to_payload`/:meth:`from_payload`).
    """

    def __init__(
        self,
        tree: Node,
        x_factors: Sequence[float],
        y_factor: float,
        unit: str = "",
    ) -> None:
        self.tree = tree  # already constant-folded
        self.x_factors = tuple(x_factors)
        self.y_factor = y_factor
        self.arity = len(self.x_factors)
        self.unit = unit

    def __call__(self, xs: Sequence[float]) -> float:
        scaled_xs = [x * factor for x, factor in zip(xs, self.x_factors)]
        return self.tree.evaluate_point(scaled_xs) / self.y_factor

    def describe(self) -> str:
        inner = self.tree.to_infix()
        for index, factor in enumerate(self.x_factors):
            if factor != 1.0:
                inner = inner.replace(f"X{index}", f"(X{index} * {factor:g})")
        if self.y_factor != 1.0:
            return f"Y = ({inner}) / {self.y_factor:g}"
        return f"Y = ({inner})"

    def to_payload(self) -> dict:
        """JSON-able form; exact round trip via :meth:`from_payload`."""
        return {
            "tree": tree_to_tokens(self.tree),
            "x_factors": list(self.x_factors),
            "y_factor": self.y_factor,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ScaledTreeFormula":
        return cls(
            tree=tree_from_tokens(payload["tree"]),
            x_factors=[float(f) for f in payload["x_factors"]],
            y_factor=float(payload["y_factor"]),
        )


def _wrap_scaled_tree(tree, scaled: ScaledDataset, interpretation: str) -> Formula:
    """Fold the Tab. 2 factors back: Y = f(X*xf) / yf  (post-processing)."""
    return ScaledTreeFormula(fold_constants(tree), scaled.x_factors, scaled.y_factor)


def infer_formula(
    observations: Sequence[EsvObservation],
    series: UiSeries,
    config: Optional[GpConfig] = None,
    max_gap_s: float = 1.5,
    backend: str = "gp",
) -> Optional[InferredFormula]:
    """Full §3.5 inference for one ESV: pairing → scaling → solver.

    ``backend`` selects the inference engine (``"gp"`` | ``"linear"`` |
    ``"hybrid"``, see :mod:`repro.core.inference`); the default GP path
    evolves both interpretations for UDS values wider than one byte (one
    big-endian integer vs one variable per byte) and returns the better
    fit.  Returns ``None`` when too few samples pair up.

    In-process driver for :func:`infer_formula_steps`: results are
    bit-identical whether the generator runs alone here or interleaved
    with other ESVs under a :class:`~repro.core.gp.BatchEvaluator`.
    """
    return drive(
        infer_formula_steps(observations, series, config, max_gap_s, backend)
    )


def infer_formula_steps(
    observations: Sequence[EsvObservation],
    series: UiSeries,
    config: Optional[GpConfig] = None,
    max_gap_s: float = 1.5,
    backend: str = "gp",
):
    """Generator form of :func:`infer_formula`.

    Yields every fitness-math :class:`~repro.core.gp.MaesRequest` of the
    whole per-ESV inference (closed-form backends yield none) and returns
    the result, so a batch driver can interleave complete inferences
    across ESVs whatever engine solves them.  Dispatches to
    :func:`repro.core.inference.get_backend` for non-GP backends; the
    import is deferred because :mod:`repro.core.inference` imports this
    module for the GP path.
    """
    if backend != "gp":
        from .inference import get_backend

        result = yield from get_backend(backend).infer_steps(
            observations, series, config, max_gap_s
        )
        return result
    result = yield from gp_infer_steps(observations, series, config, max_gap_s)
    return result


def gp_infer_steps(
    observations: Sequence[EsvObservation],
    series: UiSeries,
    config: Optional[GpConfig] = None,
    max_gap_s: float = 1.5,
):
    """The genetic-programming inference generator (the pre-backend
    ``infer_formula_steps`` body, unchanged — byte-identical results).

    Yields all restart attempts, both interpretations and the
    trim-and-refit round.  Interpretations and restarts stay strictly
    sequential *within* the ESV: a later attempt only runs if the earlier
    one's fitness says so, which any speculative evaluation would break.
    """
    base_config = config or GpConfig()
    protocol = observations[0].protocol if observations else "uds"
    interpretations: List[str]
    if protocol == "kwp":
        interpretations = ["kwp"]
    elif observations and len(observations[0].raw_bytes) > 1:
        interpretations = ["int", "bytes"]
    else:
        interpretations = ["int"]

    best: Optional[InferredFormula] = None
    for interpretation in interpretations:
        mode = "bytes" if interpretation in ("bytes", "kwp") else "int"
        dataset = build_dataset(observations, series, mode, max_gap_s)
        if len(dataset) < 6:
            continue
        inferred = yield from _fit_robust_steps(dataset, base_config, interpretation)
        if best is None or inferred.fitness < best.fitness:
            best = inferred
    return best


#: Restart evolution with a new seed while the best fitness stays above
#: this (scaled-space) error; the values in play are ~[1, 10].
RESTART_FITNESS = 0.02
MAX_RESTARTS = 3


def _evolve_with_restarts(config: GpConfig, scaled: "ScaledDataset"):
    """In-process driver for :func:`_evolve_with_restarts_steps`."""
    return drive(_evolve_with_restarts_steps(config, scaled))


def _evolve_with_restarts_steps(config: GpConfig, scaled: "ScaledDataset"):
    from dataclasses import replace as _replace

    # One fitness cache spans every restart attempt: the dataset is the
    # same, only the seed changes, and restart populations re-derive the
    # same seeded shapes and small trees — immediate hits.
    cache = FitnessCache() if config.fitness_cache else None
    # The active tracer is looked up when the generator starts; a batch
    # driver advances generators under the disabled tracer (interleaved
    # span stacks cannot nest), the serial driver sees the real one.
    tracer = get_active()
    best = None
    for attempt in range(MAX_RESTARTS):
        attempt_config = _replace(config, seed=config.seed + 7919 * attempt)
        with tracer.span("gp_restart", attempt=attempt) as span:
            result = yield from GeneticProgrammer(attempt_config, cache=cache).fit_steps(
                scaled.x_rows, scaled.y_values
            )
            span.set(
                fitness=round(result.fitness, 6),
                generations=attempt_config.generations,
            )
        if best is None or result.fitness < best.fitness:
            best = result
        if best.fitness <= RESTART_FITNESS:
            break
    return best


def _fit_robust(
    dataset: PairedDataset, config: GpConfig, interpretation: str
) -> InferredFormula:
    """In-process driver for :func:`_fit_robust_steps`."""
    return drive(_fit_robust_steps(dataset, config, interpretation))


def _fit_robust_steps(
    dataset: PairedDataset, config: GpConfig, interpretation: str
):
    """GP fit with one trim-and-refit round.

    OCR errors that survive the §3.3 filter (small digit confusions on
    fast-moving signals) show up as isolated large residuals against the
    first fit; trimming them and evolving once more is the robust-regression
    counterpart of the outlier tolerance the paper attributes to GP (§4.4).

    When a run converges to a visibly poor optimum, evolution restarts with
    a fresh seed (up to :data:`MAX_RESTARTS` times) and the best result
    wins — the multi-run equivalent of the paper's larger 1000x30 budget.
    """
    scaled = prescale(dataset)
    result = yield from _evolve_with_restarts_steps(config, scaled)

    # One vectorised evaluation; the tree primitives are bit-identical to
    # the scalar path, so the residuals match a per-sample loop exactly.
    x_matrix = np.asarray(scaled.x_rows, dtype=float)
    columns = [np.ascontiguousarray(x_matrix[:, i]) for i in range(x_matrix.shape[1])]
    predictions = result.tree.evaluate(columns)
    residuals = list(np.abs(predictions - np.asarray(scaled.y_values)))
    sorted_residuals = sorted(residuals)
    mad = sorted_residuals[len(sorted_residuals) // 2]
    threshold = max(6.0 * 1.4826 * mad, 1e-6)
    keep = [i for i, r in enumerate(residuals) if r <= threshold]
    if len(keep) >= 6 and len(keep) < len(residuals):
        trimmed = PairedDataset(
            [dataset.x_rows[i] for i in keep], [dataset.y_values[i] for i in keep]
        )
        scaled = prescale(trimmed)
        result = yield from _evolve_with_restarts_steps(config, scaled)

    formula = _wrap_scaled_tree(result.tree, scaled, interpretation)
    return InferredFormula(
        formula=formula,
        description=formula.describe(),
        fitness=result.fitness,
        interpretation=interpretation,
        n_samples=len(dataset),
        generations=result.generations_run,
    )
