"""Step 3 of diagnostic-frames analysis: field extraction (§3.2).

From the assembled payloads this stage extracts the manufacturer-defined
fields DP-Reverser reverse engineers:

* **DIDs / local identifiers** from read requests,
* **ESVs** from read responses — for UDS the DID list of the *preceding
  request* delimits the values (the lengths are not encoded), for KWP 2000
  responses split into 3-byte ``(formula_type, X0, X1)`` records,
* **ECRs** (IO-control parameter + control state) from IO-control requests,
* OBD-II mode-01 PIDs and data bytes (used as alignment/ground-truth
  anchors).

Requests and responses are paired per conversation: the most recent
matching request before each response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..diagnostics import kwp2000, uds
from ..diagnostics.messages import NEGATIVE_RESPONSE_SID
from .assembly import AssembledMessage

ESV_RECORD_SIZE = 3


@dataclass(frozen=True)
class EsvObservation:
    """One raw ECU-signal-value sighting in traffic."""

    protocol: str  # "uds" | "kwp" | "obd2"
    identifier: str  # canonical key, e.g. "uds:F400", "kwp:01/0", "obd2:0C"
    raw_bytes: bytes  # value field as it appeared on the wire
    timestamp: float
    formula_type: int = 0  # KWP formula-type byte (0 elsewhere)

    def variables(self) -> Tuple[int, ...]:
        """Raw integer variables: KWP yields (X0, X1); others yield per-byte."""
        if self.protocol == "kwp":
            return (self.raw_bytes[0], self.raw_bytes[1])
        return tuple(self.raw_bytes)

    def as_int(self) -> int:
        """The value field interpreted as one big-endian integer."""
        return int.from_bytes(self.raw_bytes, "big") if self.raw_bytes else 0


@dataclass(frozen=True)
class IoControlEvent:
    """One IO-control request (plus whether it was answered positively)."""

    service: int  # 0x2F or 0x30
    identifier: int  # DID or local id
    io_parameter: int
    control_state: bytes
    timestamp: float
    positive: bool


@dataclass(frozen=True)
class ReadRequestEvent:
    """One read request (for request-semantics analysis)."""

    protocol: str
    identifiers: Tuple[int, ...]  # DIDs, or a single local id / PID
    timestamp: float
    can_id: int


@dataclass
class ExtractedFields:
    """Everything field extraction produced from one capture."""

    observations: List[EsvObservation] = field(default_factory=list)
    io_events: List[IoControlEvent] = field(default_factory=list)
    read_requests: List[ReadRequestEvent] = field(default_factory=list)

    def by_identifier(self) -> Dict[str, List[EsvObservation]]:
        grouped: Dict[str, List[EsvObservation]] = {}
        for obs in self.observations:
            grouped.setdefault(obs.identifier, []).append(obs)
        return grouped


def _is_request(payload: bytes) -> bool:
    sid = payload[0]
    return sid < 0x40 and sid != NEGATIVE_RESPONSE_SID


def extract_fields(messages: Sequence[AssembledMessage]) -> ExtractedFields:
    """Run field extraction over time-ordered assembled messages."""
    out = ExtractedFields()
    last_uds_read: Optional[Tuple[Tuple[int, ...], float]] = None
    last_kwp_read: Optional[int] = None
    last_obd_read: Optional[int] = None
    pending_io: Dict[Tuple[int, int], IoControlEvent] = {}

    for message in messages:
        payload = message.payload
        if not payload:
            continue
        sid = payload[0]

        if _is_request(payload):
            if sid == uds.UdsService.READ_DATA_BY_IDENTIFIER:
                try:
                    request = uds.decode_request_dids(payload)
                except Exception:
                    continue
                last_uds_read = (request.dids, message.t_last)
                out.read_requests.append(
                    ReadRequestEvent("uds", request.dids, message.t_last, message.can_id)
                )
            elif sid == kwp2000.KwpService.READ_DATA_BY_LOCAL_IDENTIFIER:
                try:
                    local_id = kwp2000.decode_read_request(payload)
                except Exception:
                    continue
                last_kwp_read = local_id
                out.read_requests.append(
                    ReadRequestEvent("kwp", (local_id,), message.t_last, message.can_id)
                )
            elif sid in (
                uds.UdsService.IO_CONTROL_BY_IDENTIFIER,
                kwp2000.KwpService.IO_CONTROL_BY_LOCAL_IDENTIFIER,
            ):
                event = _decode_io_request(sid, payload, message.t_last)
                if event is not None:
                    pending_io[(event.service, event.identifier)] = event
            elif sid == 0x01 and len(payload) == 2:  # OBD-II mode 01
                last_obd_read = payload[1]
                out.read_requests.append(
                    ReadRequestEvent("obd2", (payload[1],), message.t_last, message.can_id)
                )
            continue

        # ---- responses -------------------------------------------------
        if sid == NEGATIVE_RESPONSE_SID:
            if len(payload) >= 3 and payload[2] == 0x78:
                continue  # responsePending: the real answer follows
            if len(payload) >= 2:
                key = _match_pending_io(pending_io, payload[1])
                if key is not None:
                    event = pending_io.pop(key)
                    out.io_events.append(
                        IoControlEvent(
                            event.service, event.identifier, event.io_parameter,
                            event.control_state, event.timestamp, positive=False,
                        )
                    )
            continue
        if sid == uds.UdsService.READ_DATA_BY_IDENTIFIER + 0x40 and last_uds_read:
            dids, __ = last_uds_read
            try:
                pairs = uds.decode_read_response(dids, payload)
            except Exception:
                continue
            for did, value in pairs:
                out.observations.append(
                    EsvObservation("uds", f"uds:{did:04X}", value, message.t_last)
                )
        elif sid == kwp2000.KwpService.READ_DATA_BY_LOCAL_IDENTIFIER + 0x40:
            try:
                local_id, records = kwp2000.decode_read_response(payload)
            except Exception:
                continue
            for record in records:
                out.observations.append(
                    EsvObservation(
                        "kwp",
                        f"kwp:{local_id:02X}/{record.position}",
                        bytes([record.x0, record.x1]),
                        message.t_last,
                        formula_type=record.formula_type,
                    )
                )
        elif sid == 0x41 and len(payload) >= 3:  # OBD-II mode 01 response
            pid = payload[1]
            out.observations.append(
                EsvObservation("obd2", f"obd2:{pid:02X}", bytes(payload[2:]), message.t_last)
            )
        elif sid in (
            uds.UdsService.IO_CONTROL_BY_IDENTIFIER + 0x40,
            kwp2000.KwpService.IO_CONTROL_BY_LOCAL_IDENTIFIER + 0x40,
        ):
            request_sid = sid - 0x40
            key = _match_pending_io(pending_io, request_sid)
            if key is not None:
                event = pending_io.pop(key)
                out.io_events.append(
                    IoControlEvent(
                        event.service, event.identifier, event.io_parameter,
                        event.control_state, event.timestamp, positive=True,
                    )
                )
    return out


def _decode_io_request(sid: int, payload: bytes, t: float) -> Optional[IoControlEvent]:
    try:
        if sid == uds.UdsService.IO_CONTROL_BY_IDENTIFIER:
            request = uds.decode_io_control_request(payload)
            return IoControlEvent(
                sid, request.did, request.io_parameter, request.control_state, t, False
            )
        identifier, ecr = kwp2000.decode_io_control_request(payload)
        if not ecr:
            return None
        return IoControlEvent(sid, identifier, ecr[0], bytes(ecr[1:]), t, False)
    except Exception:
        return None


def _match_pending_io(
    pending: Dict[Tuple[int, int], IoControlEvent], request_sid: int
) -> Optional[Tuple[int, int]]:
    """Most recent pending IO request with the given service id."""
    candidates = [key for key in pending if key[0] == request_sid]
    if not candidates:
        return None
    return max(candidates, key=lambda key: pending[key].timestamp)
