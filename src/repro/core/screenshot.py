"""Screenshot analysis (§3.3): UI text extraction + incorrect-ESV filtering.

The recorded UI video is OCR'd frame by frame; name/value rows become
per-label time series.  Because the OCR engine mis-reads a fraction of
frames (dropped decimal points, digit confusion, partial reads), a
two-stage filter removes bad samples:

1. **Range filter** — values outside the plausible range for the ESV type
   (or a generous global default) are dropped;
2. **Outlier filter** — values far from the local rolling median are
   dropped: over a short window the physical quantity cannot jump, so a
   spike is almost surely an OCR error.
"""

from __future__ import annotations

import math
import re
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cps.camera import CapturedFrame
from ..cps.ocr import OcrEngine, OcrFrame
from ..cps.uianalyzer import UIAnalyzer, text_similarity

_VALUE_PATTERN = re.compile(r"^\s*(-?\d+(?:\.\d+)?)\s*([^\d\s].*)?$")

#: Global plausibility bounds used when no per-type hint exists.
DEFAULT_RANGE = (-1e5, 1e5)


@dataclass(frozen=True)
class UiSample:
    """One OCR'd value reading."""

    timestamp: float
    text: str
    value: Optional[float]  # None for enum/state readings
    unit: str = ""


@dataclass
class UiSeries:
    """The readings observed for one on-screen label."""

    label: str
    samples: List[UiSample] = field(default_factory=list)

    @property
    def numeric_samples(self) -> List[UiSample]:
        return [s for s in self.samples if s.value is not None]

    @property
    def is_numeric(self) -> bool:
        numeric = len(self.numeric_samples)
        return numeric >= max(3, len(self.samples) // 2)

    def values(self) -> List[Tuple[float, float]]:
        return [(s.timestamp, s.value) for s in self.numeric_samples]


def parse_value(text: str) -> Tuple[Optional[float], str]:
    """Parse a displayed value like ``"771.2 rpm"`` into (float, unit)."""
    match = _VALUE_PATTERN.match(text)
    if not match:
        return None, ""
    try:
        value = float(match.group(1))
    except ValueError:
        return None, ""
    unit = (match.group(2) or "").strip()
    return value, unit


def extract_ui_series(
    ocr_frames: Sequence[OcrFrame],
    analyzer: Optional[UIAnalyzer] = None,
    merge_threshold: float = 0.88,
) -> Dict[str, UiSeries]:
    """Build per-label time series from OCR'd video frames.

    OCR occasionally mangles a *label*, fragmenting its series; labels are
    therefore canonicalised by fuzzy-merging near-duplicates into the most
    frequent spelling.
    """
    analyzer = analyzer or UIAnalyzer()
    raw: Dict[str, UiSeries] = {}
    for frame in ocr_frames:
        analysis = analyzer.analyze(frame)
        for label_region, value_region in analysis.value_rows:
            text = value_region.text.strip()
            if text in ("---", ""):
                continue
            value, unit = parse_value(text)
            series = raw.setdefault(label_region.text, UiSeries(label_region.text))
            series.samples.append(UiSample(frame.timestamp, text, value, unit))

    # Canonicalise labels: an OCR-mangled label appears in only a handful of
    # frames, so merge a *rare* series into a similar *frequent* one.  Two
    # similarly-named but genuinely distinct rows ("Wheel Speed FL" vs
    # "Wheel Speed FR") both appear in every frame and stay separate.
    by_count = sorted(raw.values(), key=lambda s: len(s.samples), reverse=True)
    merged: Dict[str, UiSeries] = {}
    for series in by_count:
        target = None
        for canonical in merged:
            frequent = len(merged[canonical].samples)
            if (
                len(series.samples) <= max(2, frequent // 4)
                and text_similarity(series.label, canonical) >= merge_threshold
            ):
                target = canonical
                break
        if target is None:
            merged[series.label] = series
        else:
            merged[target].samples.extend(series.samples)
    for series in merged.values():
        series.samples.sort(key=lambda s: s.timestamp)
    return merged


# -------------------------------------------------------------------- filters


@dataclass
class FilterReport:
    """Bookkeeping of the two-stage filter."""

    kept: int = 0
    removed_range: int = 0
    removed_outlier: int = 0


def range_filter(
    samples: Sequence[UiSample],
    bounds: Tuple[float, float] = DEFAULT_RANGE,
) -> Tuple[List[UiSample], int]:
    """Stage 1: drop numeric samples outside the plausible range."""
    lo, hi = bounds
    kept: List[UiSample] = []
    removed = 0
    for sample in samples:
        if sample.value is None or lo <= sample.value <= hi:
            kept.append(sample)
        else:
            removed += 1
    return kept, removed


def outlier_filter(
    samples: Sequence[UiSample],
    z_threshold: float = 4.0,
    min_abs: float = 1.0,
) -> Tuple[List[UiSample], int]:
    """Stage 2: drop isolated spikes inconsistent with both neighbours.

    Physical quantities move in trends — even a fast sweep changes by a
    bounded step per frame — whereas an OCR mis-read appears for a single
    frame and then snaps back.  A sample is flagged when it jumps away from
    its predecessor *and* back toward its successor (opposite-sign steps),
    both by more than ``z_threshold`` typical steps.  This keeps legitimate
    ramps and wrap-arounds (same-sign continuation) that a naive
    rolling-median rule would destroy.
    """
    numeric = [s for s in samples if s.value is not None]
    if len(numeric) < 5:
        return list(samples), 0
    values = [s.value for s in numeric]
    steps = [abs(values[i + 1] - values[i]) for i in range(len(values) - 1)]
    typical_step = statistics.median(steps)
    threshold = max(min_abs, z_threshold * typical_step)
    outliers = set()
    for index in range(1, len(values) - 1):
        d_prev = values[index] - values[index - 1]
        d_next = values[index + 1] - values[index]
        if d_prev * d_next < 0 and min(abs(d_prev), abs(d_next)) > threshold:
            outliers.add(id(numeric[index]))
    kept = [s for s in samples if s.value is None or id(s) not in outliers]
    return kept, len(samples) - len(kept)


def filter_series(
    series: UiSeries,
    bounds: Tuple[float, float] = DEFAULT_RANGE,
    z_threshold: float = 4.0,
) -> Tuple[UiSeries, FilterReport]:
    """Apply both filter stages; returns the cleaned series and a report."""
    report = FilterReport()
    stage1, report.removed_range = range_filter(series.samples, bounds)
    stage2, report.removed_outlier = outlier_filter(stage1, z_threshold)
    report.kept = len(stage2)
    return UiSeries(series.label, stage2), report


def analyze_video(
    video: Sequence[CapturedFrame],
    ocr: OcrEngine,
    analyzer: Optional[UIAnalyzer] = None,
    bounds: Tuple[float, float] = DEFAULT_RANGE,
) -> Tuple[Dict[str, UiSeries], Dict[str, FilterReport]]:
    """Full §3.3 pipeline: OCR the video, build series, filter each one."""
    ocr_frames = ocr.read_video(list(video))
    raw_series = extract_ui_series(ocr_frames, analyzer)
    cleaned: Dict[str, UiSeries] = {}
    reports: Dict[str, FilterReport] = {}
    for label, series in raw_series.items():
        cleaned[label], reports[label] = filter_series(series, bounds)
    return cleaned, reports
