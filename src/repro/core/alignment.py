"""Message/screenshot time alignment (§9.4).

The diagnostic messages and the UI video are timestamped by different
devices.  Two alignment methods are implemented, matching the paper:

1. **NTP** — both clocks synchronise to a common reference before the
   capture (:func:`repro.simtime.ntp_synchronise`); afterwards the offset
   is zero by construction.
2. **OBD-II anchoring** — the capture begins with a few reads of
   well-documented OBD-II PIDs.  Since their formulas are public, the real
   value of every OBD-II response is computable; searching the video for a
   frame displaying that value yields per-message offsets whose median is
   the camera-vs-sniffer clock offset, reusable for the whole capture.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from ..diagnostics import obd2
from .fields import EsvObservation
from .screenshot import UiSeries


def obd_ground_truth_values(observation: EsvObservation) -> List[float]:
    """All physical values a standard OBD-II response could display.

    Both the metric and (when defined) the imperial formula are candidates
    because the pipeline does not know which unit the tool shows.
    """
    if observation.protocol != "obd2":
        raise ValueError("ground truth only exists for OBD-II observations")
    pid = int(observation.identifier.split(":")[1], 16)
    try:
        definition = obd2.pid_definition(pid)
    except Exception:
        return []
    values = []
    data = observation.raw_bytes
    if len(data) < definition.num_bytes:
        return []
    xs = tuple(float(b) for b in data[: definition.num_bytes])
    values.append(definition.formula(xs))
    if definition.alt_formula is not None:
        values.append(definition.alt_formula(xs))
    return values


def estimate_offset_via_obd(
    observations: Sequence[EsvObservation],
    ui_series: Dict[str, UiSeries],
    value_tolerance: float = 0.02,
    max_offset_s: float = 30.0,
) -> Optional[float]:
    """Estimate (camera time - sniffer time) from OBD-II anchor reads.

    Returns ``None`` when no anchor matches were found.
    """
    offsets: List[float] = []
    numeric_samples = [
        sample
        for series in ui_series.values()
        for sample in series.numeric_samples
    ]
    for observation in observations:
        if observation.protocol != "obd2":
            continue
        truths = obd_ground_truth_values(observation)
        for truth in truths:
            tolerance = max(0.51, abs(truth) * value_tolerance)
            candidates = [
                sample
                for sample in numeric_samples
                if abs(sample.value - truth) <= tolerance
                and abs(sample.timestamp - observation.timestamp) <= max_offset_s
            ]
            if not candidates:
                continue
            best = min(candidates, key=lambda s: abs(s.timestamp - observation.timestamp))
            offsets.append(best.timestamp - observation.timestamp)
    if not offsets:
        return None
    return statistics.median(offsets)


def shift_series(
    ui_series: Dict[str, UiSeries], offset: float
) -> Dict[str, UiSeries]:
    """Re-express UI timestamps on the sniffer clock (subtract ``offset``)."""
    from .screenshot import UiSample

    shifted: Dict[str, UiSeries] = {}
    for label, series in ui_series.items():
        shifted[label] = UiSeries(
            label,
            [
                UiSample(s.timestamp - offset, s.text, s.value, s.unit)
                for s in series.samples
            ],
        )
    return shifted
