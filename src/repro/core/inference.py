"""Pluggable formula-inference backends: ``gp`` | ``linear`` | ``hybrid``.

The response-message stage (§3.5) was hardwired to genetic programming,
but most real dashboard formulas are affine or pure rescales (the paper's
Tab. 2 factors) that a closed-form least-squares solve recovers in
microseconds.  This module turns "how a paired dataset becomes a formula"
into a first-class :class:`InferenceBackend` seam:

* :class:`GpBackend` — the existing evolutionary search, untouched
  behind the interface (results stay byte-identical to the pre-seam
  pipeline);
* :class:`LinearBackend` — least squares over a small feature
  dictionary (rescale, affine, bit-shift/mask recombinations of the raw
  integer, product and ratio of raws for two-variable layouts) with an
  *exact-fit* acceptance threshold: a fit is only returned when its
  scaled-space MAE is as good as a converged GP run, otherwise the
  backend reports "no formula" rather than a plausible wrong answer;
* :class:`HybridBackend` — tries the linear dictionary first and falls
  back to the full GP search only for the hard tail (the genuinely
  non-linear manufacturer formulas), which is where the fleet
  wall-clock win comes from.

Every backend speaks the same generator protocol as the GP path: its
``infer_steps`` yields :class:`~repro.core.gp.MaesRequest` objects (the
linear solver yields none — it is closed-form) and *returns* the
:class:`~repro.core.response_analysis.InferredFormula`, so backends plug
into :func:`~repro.core.gp.drive`, the cross-ESV
:class:`~repro.core.gp.BatchEvaluator` and the island workers without
those layers knowing which engine ran.

Confidence: every recovered formula carries a ``confidence`` field — the
fraction of paired training samples the formula reproduces within the
paper's §4.2 equivalence tolerance (absolute floor, per-value relative
bound, fraction of the output range).  For the GP backend proper the
field stays at its 1.0 default and is never serialised, keeping pure-GP
reports byte-identical to the pre-seam pipeline.
"""

from __future__ import annotations

import abc
import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..formulas import Formula
from .fields import EsvObservation
from .gp import GpConfig, drive
from .response_analysis import (
    InferredFormula,
    PairedDataset,
    build_dataset,
    gp_infer_steps,
    table2_factor,
    _median_magnitude,
)
from .screenshot import UiSeries

#: The recognised inference backends, in documentation order.
INFERENCE_BACKENDS: Tuple[str, ...] = ("gp", "linear", "hybrid")

#: Accept a closed-form fit only when its scaled-space MAE is at or below
#: this bound — the same error currency (Tab. 2 scaled values, ~[1, 10])
#: and the same magnitude as the GP restart threshold
#: (:data:`~repro.core.response_analysis.RESTART_FITNESS`).  The UI shows
#: one decimal place, so even a perfect formula carries ~0.025 of
#: display-rounding MAE in raw space; 0.02 scaled space sits safely above
#: that quantisation floor for in-range values while rejecting every
#: curved (quadratic) fleet formula by two orders of magnitude.
LINEAR_ACCEPT_FITNESS = 0.02

#: Minimum paired samples, mirroring the GP path's dataset floor.
_MIN_SAMPLES = 6


# ----------------------------------------------------------- linear formula


def _operand(text: str, xs: Sequence[float]) -> float:
    if text.startswith("x"):
        return float(xs[int(text[1:])])
    return float(text)


def _term_value(term: str, xs: Sequence[float]) -> float:
    """Evaluate one dictionary term on a raw sample row.

    Terms are tiny expressions over raw variables and integer literals:
    ``"1"`` (intercept), ``"x0"``, ``"x0*x1"``, ``"x0/x1"``, ``"x0>>8"``,
    ``"x0&255"``.  Bit operators act on the (integral) raw value; a zero
    divisor yields NaN, which poisons the candidate's design matrix and
    rejects it rather than crashing.
    """
    if term == "1":
        return 1.0
    for symbol in (">>", "*", "/", "&"):
        if symbol in term:
            left, __, right = term.partition(symbol)
            a = _operand(left, xs)
            b = _operand(right, xs)
            if symbol == ">>":
                return float(int(a) >> int(b))
            if symbol == "&":
                return float(int(a) & int(b))
            if symbol == "*":
                return a * b
            return a / b if b != 0.0 else math.nan
    return _operand(term, xs)


class LinearFormula(Formula):
    """A recovered closed-form formula: ``Y = Σ cᵢ · termᵢ(X)``.

    The terms come from the :class:`LinearBackend` feature dictionary and
    are stored as strings, so the object is naturally picklable (process
    and island backends ship it between processes) and JSON round-trips
    exactly through :meth:`to_payload`/:meth:`from_payload` for the
    on-disk formula memo.
    """

    def __init__(
        self,
        terms: Sequence[str],
        coefficients: Sequence[float],
        arity: int,
        unit: str = "",
    ) -> None:
        self.terms = tuple(terms)
        self.coefficients = tuple(float(c) for c in coefficients)
        self.arity = arity
        self.unit = unit

    def __call__(self, xs: Sequence[float]) -> float:
        return sum(
            coeff * _term_value(term, xs)
            for coeff, term in zip(self.coefficients, self.terms)
        )

    def describe(self) -> str:
        pieces: List[str] = []
        for coeff, term in zip(self.coefficients, self.terms):
            body = "" if term == "1" else f"*{term.upper()}"
            if not pieces:
                pieces.append(f"{coeff:g}{body}")
            else:
                sign = "+" if coeff >= 0 else "-"
                pieces.append(f"{sign} {abs(coeff):g}{body}")
        return "Y = " + " ".join(pieces) if pieces else "Y = 0"

    def to_payload(self) -> dict:
        """JSON-able form; exact round trip via :meth:`from_payload`."""
        return {
            "terms": list(self.terms),
            "coefficients": list(self.coefficients),
            "arity": self.arity,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LinearFormula":
        return cls(
            terms=[str(t) for t in payload["terms"]],
            coefficients=[float(c) for c in payload["coefficients"]],
            arity=int(payload["arity"]),
        )


# -------------------------------------------------------- feature dictionary


def _candidate_terms(n_variables: int) -> List[Tuple[str, ...]]:
    """The dictionary, simplest shape first — acceptance takes the first
    exact fit, so a pure rescale never reports a spurious intercept.

    Deliberately *no* polynomial terms: the quadratic tail of the fleet
    must stay unfittable here so the hybrid backend genuinely falls back
    to GP for it (and so ``linear`` alone stays honest about its reach).
    """
    if n_variables == 1:
        return [
            ("x0",),  # pure rescale
            ("x0", "1"),  # affine
            ("x0>>4", "x0&15", "1"),  # nibble split
            ("x0>>8", "x0&255", "1"),  # byte split of a 16-bit raw
        ]
    if n_variables == 2:
        return [
            ("x0", "x1"),  # byte-weighted (e.g. 256*X0 + X1 rescaled)
            ("x0", "x1", "1"),
            ("x0*x1",),  # canonical KWP product
            ("x0*x1", "1"),
            ("x0/x1", "1"),  # ratio of raws
        ]
    variables = tuple(f"x{i}" for i in range(n_variables))
    return [variables, variables + ("1",)]


def _design_matrix(
    terms: Tuple[str, ...], x_rows: Sequence[Tuple[float, ...]]
) -> Optional[np.ndarray]:
    matrix = np.array(
        [[_term_value(term, xs) for term in terms] for xs in x_rows], dtype=float
    )
    if not np.isfinite(matrix).all():
        return None
    return matrix


def _solve(
    matrix: np.ndarray, y: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Least squares with a full-rank requirement.

    A rank-deficient design (a constant raw column, say) has no unique
    coefficients; rejecting it keeps describe() deterministic and leaves
    the ESV to a simpler candidate or to GP.
    """
    coeffs, __, rank, __ = np.linalg.lstsq(matrix, y, rcond=None)
    if rank < matrix.shape[1]:
        return None
    residuals = np.abs(matrix @ coeffs - y)
    return coeffs, residuals


def _round_coefficients(
    coeffs: np.ndarray, matrix: np.ndarray, y: np.ndarray, target_mae: float
) -> np.ndarray:
    """Snap coefficients to the fewest significant digits that keep the
    fit: lstsq returns ``0.10000000000000003`` where the manufacturer
    wrote ``0.1``, and the report should print the latter."""
    for digits in range(2, 13):
        rounded = np.array(
            [
                float(f"{c:.{digits}g}") if c != 0.0 else 0.0
                for c in coeffs
            ]
        )
        mae = float(np.mean(np.abs(matrix @ rounded - y)))
        if mae <= target_mae * 1.0001 + 1e-12:
            return rounded
    return coeffs


def _fit_candidate(
    terms: Tuple[str, ...], dataset: PairedDataset, y_factor: float
) -> Optional[Tuple[LinearFormula, float]]:
    """Fit one dictionary candidate; ``(formula, scaled_mae)`` or None.

    Robustness uses the GP path's 6·1.4826·MAD trim rule, but iterated
    to a fixed point rather than applied once: least squares is an L2
    fit, so mispairing outliers (fast-moving signals paired against a
    stale UI frame) drag the initial solution far enough that a single
    trim cannot separate them.  The GP path gets away with one pass only
    because its MAE fitness is already outlier-resistant.  Each round
    drops samples beyond the threshold and refits; in practice two or
    three rounds converge.
    """
    matrix = _design_matrix(terms, dataset.x_rows)
    if matrix is None:
        return None
    y = np.asarray(dataset.y_values, dtype=float)
    solved = _solve(matrix, y)
    if solved is None:
        return None
    coeffs, residuals = solved
    for __ in range(5):
        mad = float(np.median(residuals))
        threshold = max(6.0 * 1.4826 * mad, 1e-6)
        keep = residuals <= threshold
        if int(keep.sum()) < _MIN_SAMPLES or int(keep.sum()) == len(y):
            break
        refit = _solve(matrix[keep], y[keep])
        if refit is None:
            break
        matrix, y = matrix[keep], y[keep]
        coeffs, residuals = refit
    mae = float(residuals.mean())
    coeffs = _round_coefficients(coeffs, matrix, y, mae)
    mae = float(np.mean(np.abs(matrix @ coeffs - y)))
    formula = LinearFormula(terms, coeffs, arity=dataset.n_variables)
    return formula, mae * y_factor


# --------------------------------------------------------------- confidence


def sample_agreement(
    formula: Formula, dataset: PairedDataset
) -> float:
    """Fraction of paired samples the formula reproduces within the
    paper's §4.2 equivalence tolerance (the same bound
    :func:`~repro.formulas.formulas_equivalent` applies between two
    formulas, here applied between a formula and the observed UI values).
    This is the ensemble-agreement number reported as ``confidence``.
    """
    if not len(dataset):
        return 0.0
    wants = dataset.y_values
    spread = max(wants) - min(wants)
    agreeing = 0
    for xs, want in zip(dataset.x_rows, wants):
        try:
            got = formula(xs)
        except (ValueError, ZeroDivisionError, OverflowError):
            continue
        if math.isnan(got) or math.isinf(got):
            continue
        tolerance = max(0.5, 0.05 * abs(want), 0.03 * spread)
        if abs(got - want) <= tolerance:
            agreeing += 1
    return agreeing / len(dataset)


def _interpretations(
    observations: Sequence[EsvObservation],
) -> List[str]:
    """The interpretation ladder, identical to the GP path's."""
    protocol = observations[0].protocol if observations else "uds"
    if protocol == "kwp":
        return ["kwp"]
    if observations and len(observations[0].raw_bytes) > 1:
        return ["int", "bytes"]
    return ["int"]


# ----------------------------------------------------------------- backends


class InferenceBackend(abc.ABC):
    """One way of turning a paired ESV dataset into a formula.

    Implementations are stateless (all run state lives in the generator),
    which is what lets one backend object serve every ESV of a batch and
    cross process boundaries by name rather than by pickle.
    """

    #: The backend's registry name (``ReverserConfig.formula_backend``).
    name: str

    @abc.abstractmethod
    def infer_steps(
        self,
        observations: Sequence[EsvObservation],
        series: UiSeries,
        config: Optional[GpConfig] = None,
        max_gap_s: float = 1.5,
    ) -> Iterator:
        """Generator form: yields :class:`~repro.core.gp.MaesRequest`
        fitness evaluations (none for closed-form solvers) and returns
        the :class:`InferredFormula` (or None)."""

    def infer(
        self,
        observations: Sequence[EsvObservation],
        series: UiSeries,
        config: Optional[GpConfig] = None,
        max_gap_s: float = 1.5,
    ) -> Optional[InferredFormula]:
        """In-process driver for :meth:`infer_steps`."""
        return drive(self.infer_steps(observations, series, config, max_gap_s))


class GpBackend(InferenceBackend):
    """The paper's genetic-programming search, behind the seam.

    Pure delegation to :func:`~repro.core.response_analysis
    .gp_infer_steps`; results are byte-identical to the pre-seam
    pipeline, and the ``confidence`` field keeps its 1.0 default so
    report digests do not move.
    """

    name = "gp"

    def infer_steps(
        self,
        observations: Sequence[EsvObservation],
        series: UiSeries,
        config: Optional[GpConfig] = None,
        max_gap_s: float = 1.5,
    ):
        result = yield from gp_infer_steps(observations, series, config, max_gap_s)
        return result


class LinearBackend(InferenceBackend):
    """Closed-form least squares over the feature dictionary.

    Tries the same interpretation ladder as GP (KWP two-variable layout;
    one big-endian integer vs one variable per byte for wide UDS values)
    and, per interpretation, each dictionary candidate simplest-first.
    Only *exact* fits — scaled MAE at or below
    :data:`LINEAR_ACCEPT_FITNESS` — are returned; everything else is
    "no formula", never a plausible wrong answer.  Consumes no RNG, so
    running it before a GP fallback cannot perturb the GP result.
    """

    name = "linear"

    def infer_steps(
        self,
        observations: Sequence[EsvObservation],
        series: UiSeries,
        config: Optional[GpConfig] = None,
        max_gap_s: float = 1.5,
    ):
        return self._infer(observations, series, max_gap_s)[0]
        yield  # pragma: no cover — generator protocol; closed-form solver

    def infer(
        self,
        observations: Sequence[EsvObservation],
        series: UiSeries,
        config: Optional[GpConfig] = None,
        max_gap_s: float = 1.5,
    ) -> Optional[InferredFormula]:
        return self._infer(observations, series, max_gap_s)[0]

    def _infer(
        self,
        observations: Sequence[EsvObservation],
        series: UiSeries,
        max_gap_s: float = 1.5,
    ) -> Tuple[Optional[InferredFormula], bool]:
        """``(accepted formula or None, dataset_was_usable)``.

        The second element tells :class:`HybridBackend` whether a GP
        fallback could even build a dataset (too few paired samples means
        GP would return None as well, so the fallback can be skipped).
        """
        best: Optional[InferredFormula] = None
        usable = False
        for interpretation in _interpretations(observations):
            mode = "bytes" if interpretation in ("bytes", "kwp") else "int"
            dataset = build_dataset(observations, series, mode, max_gap_s)
            if len(dataset) < _MIN_SAMPLES:
                continue
            usable = True
            y_factor = table2_factor(
                _median_magnitude(dataset.y_values), allow_enlarge=True
            )
            for terms in _candidate_terms(dataset.n_variables):
                fitted = _fit_candidate(terms, dataset, y_factor)
                if fitted is None:
                    continue
                formula, scaled_mae = fitted
                if scaled_mae > LINEAR_ACCEPT_FITNESS:
                    continue
                inferred = InferredFormula(
                    formula=formula,
                    description=formula.describe(),
                    fitness=scaled_mae,
                    interpretation=interpretation,
                    n_samples=len(dataset),
                    generations=0,
                    backend="linear",
                    confidence=sample_agreement(formula, dataset),
                )
                if best is None or inferred.fitness < best.fitness:
                    best = inferred
                break  # simplest-first: first exact fit wins this ladder rung
        return best, usable


class HybridBackend(InferenceBackend):
    """Linear first, GP only for the hard tail.

    The linear probe is closed-form and consumes no randomness, so when
    it rejects, the GP fallback sees exactly the seeds, dataset and
    restart schedule a pure-GP run would — its formulas (and therefore
    the per-ESV report entries) are byte-identical to ``backend="gp"``.
    The fallback's ``confidence`` is its sample agreement against the
    winning interpretation's dataset, recorded on the
    :class:`InferredFormula` (reports omit it for GP-produced formulas
    to keep those entries digest-identical to pure GP).
    """

    name = "hybrid"

    def __init__(self) -> None:
        self._linear = LinearBackend()

    def infer_steps(
        self,
        observations: Sequence[EsvObservation],
        series: UiSeries,
        config: Optional[GpConfig] = None,
        max_gap_s: float = 1.5,
    ):
        accepted, usable = self._linear._infer(observations, series, max_gap_s)
        if accepted is not None or not usable:
            return accepted
        result = yield from gp_infer_steps(observations, series, config, max_gap_s)
        if result is not None:
            mode = "bytes" if result.interpretation in ("bytes", "kwp") else "int"
            dataset = build_dataset(observations, series, mode, max_gap_s)
            result.confidence = sample_agreement(result.formula, dataset)
        return result


_BACKENDS = {
    "gp": GpBackend,
    "linear": LinearBackend,
    "hybrid": HybridBackend,
}


def get_backend(name: str) -> InferenceBackend:
    """Instantiate a backend by registry name (``gp|linear|hybrid``)."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown formula backend {name!r}; "
            f"choose one of {', '.join(INFERENCE_BACKENDS)}"
        ) from None
