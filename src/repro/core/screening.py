"""Step 1 of diagnostic-frames analysis: screening (§3.2).

Captured traffic mixes payload-carrying frames with pure control frames.
Screening removes the latter:

* **ISO 15765-2** — flow-control frames (PCI nibble ``0x3``) only notify the
  sender of receiver properties; drop them, keep SF/FF/CF.
* **VW TP 2.0** — broadcast/channel-setup, channel-parameter and ACK frames
  carry no payload; keep only data-transmission frames.
* **BMW extended addressing** — same as ISO-TP after the address byte
  (handled by the assembler); screening drops flow control at offset 1.

The module also auto-detects which transport a capture uses, so the
pipeline needs no per-vehicle configuration.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

from ..can import CanFrame, CanLog
from ..transport.isotp import PciType
from ..transport.vwtp import (
    BROADCAST_ID_BASE,
    VwTpFrameKind,
    classify_vwtp_frame,
)

#: Known transports, in the vocabulary of this module.
TRANSPORT_ISOTP = "isotp"
TRANSPORT_VWTP = "vwtp"
TRANSPORT_BMW = "bmw"


def _isotp_pci_nibble(data: bytes, offset: int = 0) -> int:
    if len(data) <= offset:
        return -1
    return data[offset] >> 4


def detect_transport(frames: Iterable[CanFrame]) -> str:
    """Guess the transport family of a capture.

    VW TP 2.0 reveals itself through channel-setup frames in the broadcast
    id range; BMW extended addressing through frames whose *second* byte
    carries a valid ISO-TP PCI while the first byte repeats per CAN id (the
    ECU address).  Plain ISO-TP is the default.
    """
    frames = list(frames)
    for frame in frames:
        if (
            BROADCAST_ID_BASE <= frame.can_id <= BROADCAST_ID_BASE + 0xFF
            and len(frame.data) >= 2
            and frame.data[1] in (0xC0, 0xD0)
        ):
            return TRANSPORT_VWTP
    # BMW heuristic: per-id *dominant* first byte + valid PCI at offset 1,
    # while offset 0 is *not* a globally valid PCI for a decent fraction.
    # A lossy sniffer tap flips the occasional bit, so strict per-id
    # constancy would abandon the whole BMW decode over a single corrupted
    # frame; instead require the most common first byte to account for the
    # overwhelming majority of each id's traffic.
    votes_bmw = 0
    votes_isotp = 0
    first_bytes: Dict[int, Counter] = {}
    for frame in frames:
        if len(frame.data) < 2:
            continue
        first_bytes.setdefault(frame.can_id, Counter())[frame.data[0]] += 1
        pci0 = _isotp_pci_nibble(frame.data, 0)
        pci1 = _isotp_pci_nibble(frame.data, 1)
        if pci0 in (0x0, 0x1, 0x2, 0x3):
            # Could still be BMW if byte 0 is an address that happens to
            # have a low nibble; disambiguate via per-id dominance below.
            votes_isotp += 1
        if pci1 in (0x0, 0x1, 0x2, 0x3):
            votes_bmw += 1
    dominant = {
        can_id: counts.most_common(1)[0]
        for can_id, counts in first_bytes.items()
    }
    if (
        first_bytes
        and all(
            count >= 0.9 * sum(first_bytes[can_id].values())
            for can_id, (__, count) in dominant.items()
        )
        and votes_bmw >= votes_isotp
        and any(byte not in range(0x00, 0x40) for byte, __ in dominant.values())
    ):
        return TRANSPORT_BMW
    return TRANSPORT_ISOTP


def screen_isotp(frames: Iterable[CanFrame], pci_offset: int = 0) -> List[CanFrame]:
    """Keep SF/FF/CF frames; drop flow control and non-ISO-TP noise."""
    kept: List[CanFrame] = []
    for frame in frames:
        nibble = _isotp_pci_nibble(frame.data, pci_offset)
        if nibble in (PciType.SINGLE, PciType.FIRST, PciType.CONSECUTIVE):
            kept.append(frame)
    return kept


def screen_vwtp(frames: Iterable[CanFrame]) -> List[CanFrame]:
    """Keep only TP 2.0 data-transmission frames (§3.2 Step 1)."""
    return [
        frame
        for frame in frames
        if classify_vwtp_frame(frame) == VwTpFrameKind.DATA
    ]


def frame_passes_screen(frame: CanFrame, transport: str) -> bool:
    """Per-frame screening predicate (the stateless core of :func:`screen`).

    Screening never looks across frames, so a live stream can screen each
    frame as it arrives and reach exactly the batch decision.
    """
    if transport == TRANSPORT_VWTP:
        return classify_vwtp_frame(frame) == VwTpFrameKind.DATA
    if transport == TRANSPORT_BMW:
        offset = 1
    elif transport == TRANSPORT_ISOTP:
        offset = 0
    else:
        raise ValueError(f"unknown transport {transport!r}")
    nibble = _isotp_pci_nibble(frame.data, offset)
    return nibble in (PciType.SINGLE, PciType.FIRST, PciType.CONSECUTIVE)


def screen_mask(arrays, transport: str):
    """Vectorised :func:`screen`: a keep-mask over a whole capture.

    Takes a :class:`~repro.transport.arrays.FrameArrays` and returns a
    boolean numpy array marking the frames batch screening would keep,
    or ``None`` when the transport has no vectorised screen (VW TP 2.0
    classification is stateful enough that the event path handles it).
    Bit-for-bit equivalent to mapping :func:`frame_passes_screen`: the
    ``dlcs > offset`` term reproduces the "too short to hold a PCI"
    rejection that zero padding would otherwise hide.
    """
    if transport == TRANSPORT_BMW:
        offset = 1
    elif transport == TRANSPORT_ISOTP:
        offset = 0
    else:
        return None
    return (arrays.dlcs > offset) & (arrays.nibbles(offset) <= PciType.CONSECUTIVE)


def screen(frames: Iterable[CanFrame], transport: str) -> List[CanFrame]:
    """Dispatch to the right screener for ``transport``."""
    if transport == TRANSPORT_VWTP:
        return screen_vwtp(frames)
    if transport == TRANSPORT_BMW:
        return screen_isotp(frames, pci_offset=1)
    if transport == TRANSPORT_ISOTP:
        return screen_isotp(frames, pci_offset=0)
    raise ValueError(f"unknown transport {transport!r}")


def screen_log(log: CanLog, transport: str = "") -> List[CanFrame]:
    """Screen a whole capture, auto-detecting the transport when not given."""
    frames = list(log)
    return screen(frames, transport or detect_transport(frames))
