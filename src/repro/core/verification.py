"""Formula-correctness verification.

The paper scores an inferred formula *correct* when its outputs match the
ground truth over the values actually observed in traffic — coefficients
need not match (§4.2's ``Y = 1.7X - 22`` ≈ ``Y = 1.8X - 40`` over
X ∈ [0xA0, 0xC0]; §4.3's one-variable simplifications when the other
variable is constant).  This module centralises that check for all three
inference algorithms and rolls results up into the per-car precision rows
of Tabs. 5/6/10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..formulas import Formula, formulas_equivalent


@dataclass
class VerificationResult:
    """Outcome of checking one inferred formula against its ground truth."""

    identifier: str
    label: str
    correct: bool
    inferred_description: str
    truth_description: str
    n_samples: int


def check_formula(
    candidate,
    truth: Formula,
    observed_samples: Sequence[Tuple[float, ...]],
    rel_tol: float = 0.05,
    abs_tol: float = 0.75,
) -> bool:
    """Numeric equivalence over observed raw values.

    ``candidate`` may be a :class:`Formula` or an
    :class:`~repro.core.response_analysis.InferredFormula` — anything
    callable on a variable tuple.  When candidate arity is smaller than
    the truth's (GP collapsed a constant variable), the samples are passed
    to the candidate truncated/adapted accordingly.
    """
    if not observed_samples:
        return False
    sample_width = len(observed_samples[0])

    def arity_of(formula) -> Optional[int]:
        arity = getattr(formula, "arity", None)
        if arity is None:
            arity = getattr(getattr(formula, "formula", None), "arity", None)
        return arity

    def adapter(arity: Optional[int]):
        def adapt(xs: Tuple[float, ...]) -> Sequence[float]:
            if arity is None or len(xs) == arity:
                return xs
            if arity == 1:
                # Single-integer interpretation of multi-byte values.
                value = 0.0
                for x in xs:
                    value = value * 256.0 + x
                return (value,)
            return xs[:arity]

        return adapt

    wrapped_candidate = _CallableFormula(candidate, adapter(arity_of(candidate)), sample_width)
    wrapped_truth = _CallableFormula(truth, adapter(arity_of(truth)), sample_width)
    return formulas_equivalent(
        wrapped_candidate, wrapped_truth, observed_samples, rel_tol, abs_tol
    )


class _CallableFormula(Formula):
    """Adapter giving any callable the Formula interface."""

    def __init__(self, inner, adapt, arity: int) -> None:
        self._inner = inner
        self._adapt = adapt
        self.arity = arity

    def __call__(self, xs: Sequence[float]) -> float:
        return float(self._inner(self._adapt(tuple(xs))))

    def describe(self) -> str:
        describe = getattr(self._inner, "describe", None)
        if describe is not None:
            return describe()
        return getattr(self._inner, "description", "<callable>")


@dataclass
class PrecisionRow:
    """One row of a Tab. 6 / Tab. 10 style precision table."""

    name: str  # car or dataset name
    total: int
    correct: int

    @property
    def precision(self) -> float:
        return self.correct / self.total if self.total else 0.0


def precision_table(rows: Sequence[PrecisionRow]) -> Dict[str, object]:
    """Aggregate rows into the table + total summary the paper prints."""
    total = sum(r.total for r in rows)
    correct = sum(r.correct for r in rows)
    return {
        "rows": list(rows),
        "total": total,
        "correct": correct,
        "precision": correct / total if total else 0.0,
    }
