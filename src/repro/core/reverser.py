"""The DP-Reverser facade: capture in, reverse-engineering report out.

Pipeline (Fig. 6a):

1. diagnostic-frames analysis — screening, payload assembly, field
   extraction (:mod:`screening`, :mod:`assembly`, :mod:`fields`);
2. screenshot analysis — OCR the UI video, build per-label series, filter
   OCR errors (:mod:`screenshot`);
3. alignment — correct the camera-vs-sniffer clock offset via the OBD-II
   anchor when present (:mod:`alignment`);
4. request-message analysis — associate DIDs/local-ids with UI semantics
   (:mod:`request_analysis`);
5. response-message analysis — infer proprietary formulas with GP
   (:mod:`response_analysis`);
6. ECR analysis — recover the three-message control procedures
   (:mod:`ecr_analysis`).
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..can.noise import FaultCounts, NoiseProfile, apply_noise
from ..cps.collector import Capture
from ..cps.ocr import OcrEngine
from ..observability.trace import NULL_TRACER, Tracer, activate, activated, get_active
from ..transport.base import HardeningPolicy
from .alignment import estimate_offset_via_obd, shift_series
from .assembly import AssembledMessage, DecodeDiagnostics, assemble_with_diagnostics
from .ecr_analysis import EcrProcedure, attach_semantics, extract_procedures
from .fields import EsvObservation, ExtractedFields, extract_fields
from .formula_memo import FormulaMemo, dataset_key
from .gp import GpConfig, prime_instruction_tables
from .request_analysis import SemanticMatch, match_semantics
from .response_analysis import InferredFormula, infer_formula, infer_formula_steps
from .screenshot import FilterReport, UiSeries, analyze_video, extract_ui_series

#: Execution backends for per-ESV formula inference (*where* it runs).
_GP_BACKENDS = frozenset({"auto", "serial", "thread", "process", "island"})

#: Inference backends for per-ESV formula inference (*which engine* runs);
#: see :mod:`repro.core.inference`.
_FORMULA_BACKENDS = frozenset({"gp", "linear", "hybrid"})


@dataclass(frozen=True)
class ReverserConfig:
    """Every knob of the reverse-engineering pipeline in one place.

    The single constructor path of :class:`DPReverser` (the legacy
    positional-``GpConfig``/kwargs shims were removed after a deprecation
    cycle).
    """

    #: GP search parameters for formula inference (default: paper settings).
    gp_config: Optional[GpConfig] = None
    #: Seed of the simulated OCR engine reading the tool's UI video.
    ocr_seed: int = 23
    #: Estimate and correct the camera-vs-sniffer clock offset (§3.3).
    estimate_alignment: bool = True
    #: Called as ``stage_hook(stage_name, elapsed_seconds)`` at every
    #: pipeline stage boundary.  The runtime subsystem installs a recorder
    #: here to build per-stage wall-clock histograms.
    stage_hook: Optional[Callable[[str, float], None]] = None
    #: Performance counter used to time stages.  Defaults to the real
    #: :func:`time.perf_counter`; simulated paths pass
    #: :meth:`repro.simtime.SimClock.perf` to stay deterministic.
    perf: Optional[Callable[[], float]] = None
    #: Worker count for per-ESV formula inference (1 = serial in-process).
    gp_workers: int = 1
    #: Execution backend for per-ESV formula inference: ``"auto"`` picks a
    #: process pool whenever ``gp_workers > 1`` (the GP hot path is pure
    #: Python, so only processes escape the GIL), ``"serial"``/``"thread"``
    #: /``"process"`` force a specific backend, and ``"island"`` fans the
    #: ESVs out over long-lived worker processes that each evolve an
    #: *island* of ESVs through one cross-ESV batched pass, reading the
    #: observation datasets from shared memory
    #: (:mod:`repro.core.gp.islands`).  Every backend produces
    #: byte-identical reports; only wall-clock differs.
    gp_backend: str = "auto"
    #: *Inference* backend for formula recovery — which engine turns a
    #: paired dataset into a formula, orthogonal to :attr:`gp_backend`
    #: (which only picks where inference executes).  ``"gp"`` evolves
    #: every formula (the paper's path, byte-identical to before this
    #: knob existed); ``"linear"`` solves a closed-form feature
    #: dictionary and returns only exact fits; ``"hybrid"`` tries linear
    #: first and falls back to GP for the hard tail
    #: (:mod:`repro.core.inference`).
    formula_backend: str = "gp"
    #: Cross-ESV batched fitness evaluation for the in-process backends:
    #: when True (and more than one formula task is planned) the serial
    #: path drives every ESV's inference generator through one
    #: :class:`~repro.core.gp.BatchEvaluator`, merging same-shape fitness
    #: passes across ESVs.  Island workers always evaluate this way.
    #: Reports stay byte-identical either way.
    gp_batch: bool = False
    #: Directory of the cross-run formula memo store
    #: (:class:`~repro.core.formula_memo.FormulaMemo`).  Empty string
    #: disables memoisation.
    gp_memo_dir: str = ""
    #: Fault injection applied to the capture before payload assembly —
    #: models a lossy OBD sniffer on a healthy bus.  ``None`` (the
    #: default) leaves the capture byte-identical to the clean pipeline.
    noise: Optional[NoiseProfile] = None
    #: Transport-layer hardening applied during payload assembly
    #: (:class:`~repro.transport.base.HardeningPolicy`): bounded
    #: speculative reassembly, byte budgets, and anomaly classification
    #: against adversarial frame streams.  ``None`` (the default) keeps
    #: the legacy decoders; on a clean capture the report is
    #: byte-identical either way.
    hardening: Optional[HardeningPolicy] = None
    #: Tracer recording a hierarchical span per pipeline stage, GP task,
    #: restart and memo lookup (:mod:`repro.observability.trace`).  ``None``
    #: (the default) uses the shared disabled tracer: zero overhead, and
    #: the report stays byte-identical either way.
    trace: Optional[Tracer] = None


@dataclass
class ReversedEsv:
    """One reverse-engineered ECU signal value."""

    identifier: str  # e.g. "uds:F400" / "kwp:01/0" / "obd2:0C"
    protocol: str
    label: str  # semantic meaning recovered from the UI
    formula: Optional[InferredFormula]
    is_enum: bool
    enum_states: Dict[int, str] = field(default_factory=dict)
    samples: List[Tuple[float, ...]] = field(default_factory=list)
    match_score: float = 0.0
    formula_type: int = 0  # KWP formula-type byte

    @property
    def request_format(self) -> str:
        """The request message that reads this ESV."""
        kind, __, rest = self.identifier.partition(":")
        if kind == "uds":
            return f"22 {rest[:2]} {rest[2:]}"
        if kind == "kwp":
            local_id = rest.split("/")[0]
            return f"21 {local_id}"
        return f"01 {rest}"


@dataclass
class ReverseReport:
    """Everything DP-Reverser recovered from one capture."""

    model: str
    tool_name: str
    transport: str
    esvs: List[ReversedEsv]
    ecrs: List[EcrProcedure]
    camera_offset_estimate: Optional[float]
    filter_reports: Dict[str, FilterReport]
    n_messages: int
    n_frames: int
    #: Capture-quality accounting from payload assembly (``None`` for
    #: pre-assembled message paths such as K-Line byte logs).
    diagnostics: Optional[DecodeDiagnostics] = None
    #: Fault-injection totals when the pipeline ran with a noise profile.
    noise_counts: Optional[FaultCounts] = None
    #: The *requested* inference backend (``gp``/``linear``/``hybrid``);
    #: individual formulas carry the engine that actually solved them in
    #: :attr:`~repro.core.response_analysis.InferredFormula.backend`.
    formula_backend: str = "gp"

    @property
    def formula_esvs(self) -> List[ReversedEsv]:
        return [e for e in self.esvs if not e.is_enum and e.formula is not None]

    @property
    def enum_esvs(self) -> List[ReversedEsv]:
        return [e for e in self.esvs if e.is_enum]

    def esv_by_label(self, label: str) -> Optional[ReversedEsv]:
        for esv in self.esvs:
            if esv.label == label:
                return esv
        return None

    def recovery_by_ecu(self) -> Dict[str, Dict[str, int]]:
        """Recovered-vs-lost message counts per conversation (CAN id).

        Empty when the capture carried no decode diagnostics (pre-assembled
        message paths).  ``lost`` counts multi-frame messages abandoned by
        a decoder resync; ``errors`` counts discarded malformed frames.
        """
        if self.diagnostics is None:
            return {}
        return {
            f"{can_id:#x}": {
                "recovered": stats.payloads,
                "lost": stats.messages_lost,
                "errors": stats.errors,
            }
            for can_id, stats in sorted(self.diagnostics.streams.items())
        }

    def to_dict(self) -> dict:
        """JSON-serialisable form of the report (for tooling pipelines).

        The ``capture_quality`` key appears only when decoding was not
        perfectly clean, keeping clean-run output (and everything hashed
        from it) byte-identical to the pre-noise pipeline.  The same
        gating applies to the inference-backend fields: the top-level
        ``formula_backend`` key appears only for non-GP runs, and a
        per-ESV ``backend``/``confidence`` pair only on formulas the
        linear engine produced — so a pure-GP report is byte-identical to
        the pre-backend pipeline, and a hybrid run's GP-tail ESV entries
        are byte-identical to a pure-GP run's.
        """
        quality = None
        if self.diagnostics is not None and not self.diagnostics.clean:
            quality = {
                "decode": self.diagnostics.to_dict(),
                "recovery_by_ecu": self.recovery_by_ecu(),
            }
            if self.noise_counts is not None:
                quality["noise"] = self.noise_counts.to_dict()
        return {
            **({"capture_quality": quality} if quality else {}),
            **(
                {"formula_backend": self.formula_backend}
                if self.formula_backend != "gp"
                else {}
            ),
            "model": self.model,
            "tool_name": self.tool_name,
            "transport": self.transport,
            "n_frames": self.n_frames,
            "n_messages": self.n_messages,
            "camera_offset_estimate": self.camera_offset_estimate,
            "esvs": [
                {
                    "identifier": esv.identifier,
                    "protocol": esv.protocol,
                    "request": esv.request_format,
                    "label": esv.label,
                    "is_enum": esv.is_enum,
                    "formula": esv.formula.description if esv.formula else None,
                    **(
                        {
                            "backend": esv.formula.backend,
                            "confidence": round(esv.formula.confidence, 4),
                        }
                        if esv.formula is not None and esv.formula.backend != "gp"
                        else {}
                    ),
                    "enum_states": {
                        str(raw): text for raw, text in esv.enum_states.items()
                    },
                    "n_samples": len(esv.samples),
                    "match_score": round(esv.match_score, 4),
                }
                for esv in self.esvs
            ],
            "ecrs": [
                {
                    "service": f"{ecr.service:02X}",
                    "identifier": f"{ecr.identifier:04X}",
                    "label": ecr.label,
                    "control_state": ecr.control_state.hex(" ").upper(),
                    "procedure": ecr.request_pattern,
                    "complete": ecr.complete,
                }
                for ecr in self.ecrs
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    def to_markdown(self) -> str:
        """Human-readable report (the artefact a pentester files)."""
        lines = [
            f"# Reverse-engineering report: {self.model}",
            "",
            f"- Tool: {self.tool_name}",
            f"- Transport: {self.transport}",
            f"- Capture: {self.n_frames} frames, {self.n_messages} messages",
            "",
            "## ECU signal values",
            "",
            "| Request | Meaning | Formula / states |",
            "|---|---|---|",
        ]
        for esv in self.esvs:
            if esv.is_enum:
                states = ", ".join(
                    f"{raw}={text}" for raw, text in sorted(esv.enum_states.items())
                )
                detail = f"enum: {states}" if states else "enum"
            else:
                detail = esv.formula.description if esv.formula else "?"
            lines.append(f"| `{esv.request_format}` | {esv.label} | `{detail}` |")
        lines += ["", "## Control procedures", ""]
        if not self.ecrs:
            lines.append("(none observed)")
        for ecr in self.ecrs:
            lines.append(f"- **{ecr.label or hex(ecr.identifier)}**: `{ecr.request_pattern}`")
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [
            f"Model: {self.model} (tool: {self.tool_name}, transport: {self.transport})",
            f"Frames: {self.n_frames}, assembled messages: {self.n_messages}",
            f"ESVs reversed: {len(self.esvs)} "
            f"({len(self.formula_esvs)} with formulas, {len(self.enum_esvs)} enum)",
            f"Control procedures: {len(self.ecrs)}",
        ]
        if self.diagnostics is not None and not self.diagnostics.clean:
            stats = self.diagnostics.stats
            lines.append(
                f"Capture quality: {stats.errors} decode errors, "
                f"{stats.resyncs} resyncs, {stats.messages_lost} messages lost"
            )
        for esv in self.esvs:
            if esv.formula is not None:
                lines.append(
                    f"  [{esv.request_format}] {esv.label}: {esv.formula.description}"
                )
            else:
                lines.append(f"  [{esv.request_format}] {esv.label}: enum")
        for ecr in self.ecrs:
            lines.append(f"  [ECR] {ecr.label or '?'}: {ecr.request_pattern}")
        return "\n".join(lines)


@dataclass
class _FormulaTask:
    """One pending GP inference, lean enough to cross a process boundary.

    Carries only what :func:`infer_formula` needs — the paired dataset,
    the per-ESV seeded :class:`GpConfig` and the identity scalars for the
    resulting :class:`ReversedEsv`.  Never the reverser, capture or bus
    objects: the pickled payload stays a few kilobytes per ESV.

    ``slot`` is the ESV's position in the report, fixed at plan time so the
    output order is identical whether the tasks run serially or fan out
    over a thread or process pool.
    """

    slot: int
    identifier: str
    label: str
    match_score: float
    observations: List[EsvObservation]
    series: UiSeries
    config: GpConfig
    protocol: str
    formula_type: int
    #: Requested inference backend (``gp``/``linear``/``hybrid``); rides
    #: in the pickled payload so process/island workers run the same
    #: engine — and key the memo the same way — as the serial path.
    backend: str = "gp"


@dataclass
class _TaskOutcome:
    """What one executed formula task sends back to the planner.

    ``elapsed`` is telemetry for the parent's ``gp_formula`` stage hook —
    the hook itself cannot cross a process boundary, so workers report
    timings in the result object and the parent replays them during the
    deterministic slot-order merge.
    """

    slot: int
    esv: ReversedEsv
    elapsed: float
    memo_hit: Optional[bool]  # None when memoisation was off
    #: Spans recorded inside a pool worker (exported dict form) — the
    #: parent grafts them into its own tracer during the merge, the same
    #: route ``elapsed`` takes.  Empty unless tracing is on.
    spans: List[dict] = field(default_factory=list)


def _esv_from_task(
    task: _FormulaTask, inferred: Optional[InferredFormula]
) -> ReversedEsv:
    """The report entry for one executed (or recalled) formula task."""
    return ReversedEsv(
        identifier=task.identifier,
        protocol=task.protocol,
        label=task.label,
        formula=inferred,
        is_enum=False,
        samples=[tuple(o.variables()) for o in task.observations],
        match_score=task.match_score,
        formula_type=task.formula_type,
    )


def _execute_formula_task(
    task: _FormulaTask, memo: Optional[FormulaMemo]
) -> Tuple[ReversedEsv, Optional[bool]]:
    """Run (or recall) one ESV's inference.  Shared by every backend."""
    memo_hit: Optional[bool] = None
    if memo is not None:
        with get_active().span("memo_lookup", esv=task.identifier) as span:
            key = dataset_key(
                task.observations, task.series, task.config, backend=task.backend
            )
            memo_hit, inferred = memo.get(key)
            span.set(hit=memo_hit)
        if not memo_hit:
            inferred = infer_formula(
                task.observations, task.series, task.config, backend=task.backend
            )
            memo.put(key, inferred)
    else:
        inferred = infer_formula(
            task.observations, task.series, task.config, backend=task.backend
        )
    return _esv_from_task(task, inferred), memo_hit


def run_batched_tasks(
    tasks: List[_FormulaTask],
    memo: Optional[FormulaMemo],
    perf: Callable[[], float] = time.perf_counter,
) -> List[_TaskOutcome]:
    """Execute many formula tasks as one cross-ESV batched pass.

    Memo lookups happen up front (sequentially, so their spans nest
    normally); every miss becomes an :func:`infer_formula_steps`
    generator, and one :class:`~repro.core.gp.BatchEvaluator` drives all
    of them in lock step, merging same-shape fitness evaluations across
    ESVs.  Results — and therefore reports — are byte-identical to
    running the tasks one at a time.

    ``elapsed`` telemetry: concurrent inferences have no private
    wall-clock, so each executed task reports an equal share of the batch
    duration (memo hits report 0.0).  Per-restart spans are not recorded
    — interleaved coroutines cannot nest spans — so the batch is covered
    by a single ``gp_batch`` span instead.
    """
    from .gp.batch import BatchEvaluator

    tracer = get_active()
    start = perf()
    outcomes: List[_TaskOutcome] = []
    generators = []
    gen_tasks: List[Tuple[_FormulaTask, Optional[str]]] = []
    with tracer.span("gp_batch", n_tasks=len(tasks)):
        for task in tasks:
            key: Optional[str] = None
            if memo is not None:
                with tracer.span("memo_lookup", esv=task.identifier) as span:
                    key = dataset_key(
                        task.observations,
                        task.series,
                        task.config,
                        backend=task.backend,
                    )
                    memo_hit, inferred = memo.get(key)
                    span.set(hit=memo_hit)
                if memo_hit:
                    outcomes.append(
                        _TaskOutcome(task.slot, _esv_from_task(task, inferred), 0.0, True)
                    )
                    continue
            generators.append(
                infer_formula_steps(
                    task.observations, task.series, task.config, backend=task.backend
                )
            )
            gen_tasks.append((task, key))
        results = BatchEvaluator().run(generators)
        share = (perf() - start) / max(1, len(gen_tasks))
        for (task, key), inferred in zip(gen_tasks, results):
            if memo is not None:
                memo.put(key, inferred)
            outcomes.append(
                _TaskOutcome(
                    task.slot,
                    _esv_from_task(task, inferred),
                    share,
                    False if memo is not None else None,
                )
            )
    return outcomes


#: Per-process state for the ``process`` GP backend, installed once per pool
#: worker by :func:`_gp_worker_init`.  Module-level because
#: :class:`ProcessPoolExecutor` only ships module-level callables.
_WORKER_MEMO: Optional[FormulaMemo] = None
_WORKER_TRACE: bool = False


def _gp_worker_init(memo_dir: str, trace: bool = False) -> None:
    """Warm one pool worker: instruction tables and the memo handle.

    Runs inside the child process right after it starts (spawn-safe — it
    touches only module-level state), so every task submitted afterwards
    finds hot compiled-tree instruction tables instead of repaying the
    lazy-initialisation cost, and a single memo handle instead of
    reopening the store per task.  ``trace`` mirrors the parent tracer's
    enabled flag: workers record spans into a per-task tracer and ship
    them back in the :class:`_TaskOutcome`.
    """
    global _WORKER_MEMO, _WORKER_TRACE
    prime_instruction_tables()
    _WORKER_MEMO = FormulaMemo(memo_dir) if memo_dir else None
    _WORKER_TRACE = trace


def _run_formula_task(task: _FormulaTask) -> _TaskOutcome:
    """Process-pool entry point: execute one task against worker state.

    Timing uses the real clock — the parent's injected ``perf`` counter
    cannot cross the process boundary — which is fine because ``elapsed``
    is telemetry only, never part of the report payload.
    """
    start = time.perf_counter()
    if _WORKER_TRACE:
        tracer = Tracer()
        previous = activate(tracer)
        try:
            with tracer.span("gp_formula", esv=task.identifier, backend=task.backend):
                esv, memo_hit = _execute_formula_task(task, _WORKER_MEMO)
        finally:
            activate(previous)
        return _TaskOutcome(
            task.slot,
            esv,
            time.perf_counter() - start,
            memo_hit,
            tracer.export_payload(),
        )
    esv, memo_hit = _execute_formula_task(task, _WORKER_MEMO)
    return _TaskOutcome(task.slot, esv, time.perf_counter() - start, memo_hit)


@dataclass
class AnalysisContext:
    """Intermediate pipeline state, exposed so benches can reuse the exact
    same datasets with alternative inference algorithms (Tab. 10)."""

    capture: Capture
    transport: str
    messages: List[AssembledMessage]
    fields: ExtractedFields
    grouped: Dict[str, List[EsvObservation]]
    series: Dict[str, UiSeries]  # filtered, alignment-corrected
    series_raw: Dict[str, UiSeries]  # unfiltered (for robustness ablations)
    filter_reports: Dict[str, FilterReport]
    matches: List[SemanticMatch]
    offset: Optional[float]
    #: Capture-quality accounting from payload assembly (``None`` when the
    #: caller supplied pre-assembled messages).
    diagnostics: Optional[DecodeDiagnostics] = None
    #: Fault-injection totals when the capture passed through a noise
    #: profile before assembly.
    noise_counts: Optional[FaultCounts] = None


class DPReverser:
    """The reverse-engineering pipeline.

    Configured with a single :class:`ReverserConfig`::

        reverser = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2)))

    The legacy call shapes (a bare :class:`GpConfig` as the first
    argument; loose keyword arguments) were removed after a deprecation
    cycle and now raise :class:`TypeError`.
    """

    def __init__(self, config: Optional[ReverserConfig] = None) -> None:
        if config is not None and not isinstance(config, ReverserConfig):
            raise TypeError(
                "DPReverser takes a ReverserConfig; the legacy "
                "positional-GpConfig form was removed — use "
                f"ReverserConfig(gp_config=...), got {type(config).__name__}"
            )
        self.config = config or ReverserConfig()
        if self.config.gp_workers < 1:
            raise ValueError(
                f"need at least one GP worker, got {self.config.gp_workers}"
            )
        if self.config.gp_backend not in _GP_BACKENDS:
            raise ValueError(
                f"unknown gp_backend {self.config.gp_backend!r}; "
                f"choose one of {sorted(_GP_BACKENDS)}"
            )
        if self.config.formula_backend not in _FORMULA_BACKENDS:
            raise ValueError(
                f"unknown formula_backend {self.config.formula_backend!r}; "
                f"choose one of {sorted(_FORMULA_BACKENDS)}"
            )
        # Resolved attribute surface; existing call sites read these.
        self.gp_config = self.config.gp_config or GpConfig()
        self.ocr_seed = self.config.ocr_seed
        self.estimate_alignment = self.config.estimate_alignment
        self.stage_hook = self.config.stage_hook
        self.perf = self.config.perf or time.perf_counter
        #: Worker count for per-ESV formula inference.  Each ESV's GP run
        #: is independently seeded (:func:`_stable_seed`) and outcomes
        #: merge back in slot order, so parallel execution changes
        #: wall-clock only, never the report.  The fitness hot path is the
        #: compiled-program interpreter loop: Python bytecode dispatching
        #: numpy calls on arrays of a few dozen samples, so the GIL is held
        #: nearly the whole time and threads serialise on it.  Real speedup
        #: needs the ``process`` backend, which ``"auto"`` selects whenever
        #: ``gp_workers > 1``.
        self.gp_workers = self.config.gp_workers
        self.gp_backend = self.config.gp_backend
        self.formula_backend = self.config.formula_backend
        self.gp_batch = self.config.gp_batch
        self.gp_memo_dir = str(self.config.gp_memo_dir or "")
        #: Formula-memo traffic accumulated across :meth:`infer` calls;
        #: stays all-zero while memoisation is off.  Besides the aggregate
        #: ``hits``/``misses`` pair, per-backend counts appear lazily as
        #: flat ``"<backend>.hits"``/``"<backend>.misses"`` keys (flat so
        #: the service can merge reverser stats by plain summation).
        self.memo_stats = {"hits": 0, "misses": 0}
        #: Per-inference-engine accounting accumulated across
        #: :meth:`infer` calls: ``"<engine>.formulas"`` counts formulas by
        #: the engine that produced them, ``"<backend>.none"`` inferences
        #: that found no formula, and ``"hybrid.fallbacks"`` the hybrid
        #: ESVs that needed the GP tail.  Exported under the
        #: ``inference.`` metrics prefix.
        self.inference_stats: Dict[str, int] = {}
        noise = self.config.noise
        self.noise = noise if noise is not None and not noise.is_null else None
        #: Transport hardening threaded into payload assembly; ``None``
        #: keeps the legacy single-context decoders.
        self.hardening = self.config.hardening
        #: Tracer for hierarchical stage/GP/memo spans; the shared disabled
        #: tracer when the config carries none, so every call site can use
        #: it unconditionally.
        self.tracer = self.config.trace or NULL_TRACER

    def _timed(self, stage: str, thunk: Callable[[], object]) -> object:
        """Run ``thunk``, reporting its duration to :attr:`stage_hook` and
        recording a span when tracing is enabled."""
        if self.stage_hook is None and not self.tracer.enabled:
            return thunk()
        start = self.perf()
        with self.tracer.span(stage):
            result = thunk()
        if self.stage_hook is not None:
            self.stage_hook(stage, self.perf() - start)
        return result

    # -------------------------------------------------------------- stages 1-4

    def analyze(
        self,
        capture: Capture,
        messages: Optional[List[AssembledMessage]] = None,
        transport: str = "",
    ) -> AnalysisContext:
        """Run every stage up to (not including) formula inference.

        ``messages`` may be supplied pre-assembled for captures that did
        not travel over CAN — e.g. K-Line byte logs de-framed by
        :func:`repro.transport.kline.parse_capture`.
        """
        with activated(self.tracer):
            return self._analyze(capture, messages, transport)

    def _analyze(
        self,
        capture: Capture,
        messages: Optional[List[AssembledMessage]],
        transport: str,
    ) -> AnalysisContext:
        from .screening import detect_transport

        diagnostics: Optional[DecodeDiagnostics] = None
        noise_counts: Optional[FaultCounts] = None
        if messages is None:
            frames = list(capture.can_log)
            if self.noise is not None:
                noise_counts = FaultCounts()
                frames = self._timed(
                    "noise", lambda: apply_noise(frames, self.noise, noise_counts)
                )
            transport = transport or detect_transport(frames)
            messages, diagnostics = self._timed(
                "assemble",
                lambda: assemble_with_diagnostics(
                    frames, transport, hardening=self.hardening
                ),
            )
        else:
            transport = transport or "kline"
            messages = sorted(messages, key=lambda m: m.t_last)
        return self._analyze_assembled(
            capture, messages, transport, diagnostics, noise_counts
        )

    def analyze_assembled(
        self,
        capture: Capture,
        messages: List[AssembledMessage],
        transport: str,
        diagnostics: Optional[DecodeDiagnostics] = None,
        noise_counts: Optional[FaultCounts] = None,
    ) -> AnalysisContext:
        """Resume the pipeline after payload assembly already happened.

        The entry point for incremental front-ends: the streaming service
        decodes frames as they arrive through
        :class:`~repro.core.assembly.StreamAssembler` and hands the
        finished ``(messages, diagnostics)`` pair here, re-joining the
        exact batch code path from field extraction onward — which is what
        makes a streamed report byte-identical to :meth:`reverse_engineer`
        on the same capture.  ``messages`` must be sorted by ``t_last``,
        the order assembly emits.
        """
        with activated(self.tracer):
            return self._analyze_assembled(
                capture, messages, transport, diagnostics, noise_counts
            )

    def _analyze_assembled(
        self,
        capture: Capture,
        messages: List[AssembledMessage],
        transport: str,
        diagnostics: Optional[DecodeDiagnostics],
        noise_counts: Optional[FaultCounts],
    ) -> AnalysisContext:
        fields = self._timed("extract_fields", lambda: extract_fields(messages))
        grouped = fields.by_identifier()

        def _screenshot_stage():
            ocr = OcrEngine(capture.tool_error_rate, seed=self.ocr_seed)
            filtered, reports = analyze_video(capture.video, ocr)
            raw_ocr = OcrEngine(capture.tool_error_rate, seed=self.ocr_seed)
            raw = extract_ui_series(raw_ocr.read_video(list(capture.video)))
            return filtered, reports, raw

        series, reports, series_raw = self._timed("screenshot", _screenshot_stage)

        offset: Optional[float] = None
        if self.estimate_alignment:
            offset = self._timed(
                "alignment",
                lambda: estimate_offset_via_obd(fields.observations, series),
            )
            if offset is not None and abs(offset) > 1e-6:
                series = shift_series(series, offset)
                series_raw = shift_series(series_raw, offset)

        matches = self._timed("match", lambda: self._match(grouped, series, capture))
        return AnalysisContext(
            capture=capture,
            transport=transport,
            messages=messages,
            fields=fields,
            grouped=grouped,
            series=series,
            series_raw=series_raw,
            filter_reports=reports,
            matches=matches,
            offset=offset,
            diagnostics=diagnostics,
            noise_counts=noise_counts,
        )

    def _match(
        self,
        grouped: Dict[str, List[EsvObservation]],
        series: Dict[str, UiSeries],
        capture: Capture,
    ) -> List[SemanticMatch]:
        """Semantic matching, per live segment when the click log has them."""
        live_segments = [s for s in capture.segments if s.kind == "live"]
        if not live_segments:
            return match_semantics(grouped, series)
        matches: List[SemanticMatch] = []
        matched_ids: set = set()
        matched_labels: set = set()
        for segment in live_segments:
            window = (segment.t_start - 1.0, segment.t_end + 1.0)
            segment_grouped = {
                key: value for key, value in grouped.items() if key not in matched_ids
            }
            segment_series = {
                key: value for key, value in series.items() if key not in matched_labels
            }
            for match in match_semantics(segment_grouped, segment_series, window):
                matches.append(match)
                matched_ids.add(match.identifier)
                matched_labels.add(match.label)
        return matches

    # ----------------------------------------------------------------- stage 5

    def reverse_engineer(self, capture: Capture) -> ReverseReport:
        """Run the full pipeline on a capture."""
        context = self.analyze(capture)
        return self.infer(context)

    def infer(self, context: AnalysisContext) -> ReverseReport:
        """Formula inference + ECR analysis over an analysis context."""
        with activated(self.tracer):
            return self._infer(context)

    def _infer(self, context: AnalysisContext) -> ReverseReport:
        esvs = self._timed("infer_formulas", lambda: self._infer_esvs(context))

        def _ecr_stage() -> List[EcrProcedure]:
            procedures = extract_procedures(context.fields.io_events)
            attach_semantics(procedures, context.capture.segments)
            return procedures

        procedures = self._timed("ecr", _ecr_stage)
        return ReverseReport(
            model=context.capture.model,
            tool_name=context.capture.tool_name,
            transport=context.transport,
            esvs=esvs,
            ecrs=procedures,
            camera_offset_estimate=context.offset,
            filter_reports=context.filter_reports,
            n_messages=len(context.messages),
            n_frames=len(context.capture.can_log),
            diagnostics=context.diagnostics,
            noise_counts=context.noise_counts,
            formula_backend=self.formula_backend,
        )

    def _infer_esvs(self, context: AnalysisContext) -> List[ReversedEsv]:
        """Plan, then execute, formula inference for every matched ESV.

        Enum ESVs resolve during planning (cheap); formula ESVs become
        lean, picklable :class:`_FormulaTask`\\ s that run on the
        configured backend (:attr:`gp_backend` / :attr:`gp_workers`).
        Each task's GP config carries a seed derived from the ESV
        identifier alone, and outcomes merge back in slot order, so every
        backend produces byte-identical reports.
        """
        esvs: List[Optional[ReversedEsv]] = []
        tasks: List[_FormulaTask] = []
        for match in context.matches:
            observations = context.grouped[match.identifier]
            series = context.series.get(match.label)
            if series is None:
                continue
            protocol = observations[0].protocol
            formula_type = observations[0].formula_type
            if match.method == "change-times" or not series.is_numeric:
                esvs.append(
                    ReversedEsv(
                        identifier=match.identifier,
                        protocol=protocol,
                        label=match.label,
                        formula=None,
                        is_enum=True,
                        enum_states=_enum_states(observations, series),
                        samples=[tuple(o.variables()) for o in observations],
                        match_score=match.score,
                        formula_type=formula_type,
                    )
                )
                continue
            config = replace(
                self.gp_config, seed=_stable_seed(match.identifier, self.gp_config.seed)
            )
            tasks.append(
                _FormulaTask(
                    slot=len(esvs),
                    identifier=match.identifier,
                    label=match.label,
                    match_score=match.score,
                    observations=observations,
                    series=series,
                    config=config,
                    protocol=protocol,
                    formula_type=formula_type,
                    backend=self.formula_backend,
                )
            )
            esvs.append(None)  # placeholder filled by the execution pass
        parent = self.tracer.current()
        for outcome in sorted(self._execute_tasks(tasks), key=lambda o: o.slot):
            esvs[outcome.slot] = outcome.esv
            if outcome.memo_hit is not None:
                verdict = "hits" if outcome.memo_hit else "misses"
                self.memo_stats[verdict] += 1
                tagged = f"{self.formula_backend}.{verdict}"
                self.memo_stats[tagged] = self.memo_stats.get(tagged, 0) + 1
            self._record_inference(outcome.esv)
            if self.stage_hook is not None:
                self.stage_hook("gp_formula", outcome.elapsed)
            if outcome.spans:
                self.tracer.absorb(
                    outcome.spans,
                    parent_id=parent.span_id if parent else None,
                )
        return esvs  # type: ignore[return-value]  # every slot is filled

    def _record_inference(self, esv: ReversedEsv) -> None:
        """Accumulate :attr:`inference_stats` for one inference outcome
        (memo recalls included — the entry remembers its engine)."""

        def bump(name: str) -> None:
            self.inference_stats[name] = self.inference_stats.get(name, 0) + 1

        if esv.formula is None:
            bump(f"{self.formula_backend}.none")
            return
        engine = esv.formula.backend
        bump(f"{engine}.formulas")
        if self.formula_backend == "hybrid" and engine == "gp":
            bump("hybrid.fallbacks")

    def _resolve_backend(self, n_tasks: int) -> str:
        """The backend one inference pass actually uses.

        An explicitly requested ``"island"`` backend always wins — its
        pool is shared across :meth:`infer` calls, so even a one-task
        pass benefits from the already-warm workers.  Otherwise a single
        worker or a single task runs serially in-process (no pool is
        worth starting), and ``"auto"`` picks the process pool, the only
        per-ESV backend the GIL lets scale.
        """
        if self.gp_backend == "island":
            return "island"
        if self.gp_workers == 1 or n_tasks <= 1:
            return "serial"
        if self.gp_backend == "auto":
            return "process"
        return self.gp_backend

    def _execute_tasks(self, tasks: List[_FormulaTask]) -> List[_TaskOutcome]:
        """Run every planned task on the resolved backend.

        Inference raises on bugs rather than degrading, and both pool
        backends re-raise the first task exception out of ``result()`` —
        parallel modes keep serial mode's exception behaviour.
        """
        if not tasks:
            return []
        backend = self._resolve_backend(len(tasks))
        if backend == "island":
            return self._run_tasks_island(tasks)
        if backend == "process":
            return self._run_tasks_process(tasks)
        memo = FormulaMemo(self.gp_memo_dir) if self.gp_memo_dir else None
        if backend == "thread":
            return self._run_tasks_thread(tasks, memo)
        if self.gp_batch and len(tasks) > 1:
            return run_batched_tasks(tasks, memo, self.perf)
        return [self._run_one(task, memo) for task in tasks]

    def _run_one(
        self, task: _FormulaTask, memo: Optional[FormulaMemo]
    ) -> _TaskOutcome:
        """Serial/thread task execution, timed with the injected clock."""
        start = self.perf()
        with self.tracer.span("gp_formula", esv=task.identifier, backend=task.backend):
            esv, memo_hit = _execute_formula_task(task, memo)
        return _TaskOutcome(task.slot, esv, self.perf() - start, memo_hit)

    def _run_tasks_thread(
        self, tasks: List[_FormulaTask], memo: Optional[FormulaMemo]
    ) -> List[_TaskOutcome]:
        """Thread-pool backend: zero startup cost, GIL-bound scaling."""
        with ThreadPoolExecutor(
            max_workers=min(self.gp_workers, len(tasks))
        ) as pool:
            futures = [pool.submit(self._run_one, task, memo) for task in tasks]
            return [future.result() for future in futures]

    def _run_tasks_island(self, tasks: List[_FormulaTask]) -> List[_TaskOutcome]:
        """Island backend: persistent workers + shared-memory datasets.

        The pool outlives this call (and this reverser — it is cached at
        module level in :mod:`repro.core.gp.islands` and reused by every
        reverser with the same worker/memo/trace configuration), so
        repeated :meth:`infer` calls pay the process-spawn and
        instruction-table warm-up exactly once per run, not once per
        capture.
        """
        from .gp.islands import shared_pool

        pool = shared_pool(self.gp_workers, self.gp_memo_dir, self.tracer.enabled)
        return pool.run(tasks)

    def _run_tasks_process(self, tasks: List[_FormulaTask]) -> List[_TaskOutcome]:
        """Process-pool backend: persistent warmed workers, lean payloads.

        Workers are initialised once (:func:`_gp_worker_init`) and then
        receive only pickled :class:`_FormulaTask` payloads; results carry
        the stage timings and memo flags back because neither
        :attr:`stage_hook` nor the parent memo handle can cross the
        process boundary.
        """
        with ProcessPoolExecutor(
            max_workers=min(self.gp_workers, len(tasks)),
            initializer=_gp_worker_init,
            initargs=(self.gp_memo_dir, self.tracer.enabled),
        ) as pool:
            futures = [pool.submit(_run_formula_task, task) for task in tasks]
            return [future.result() for future in futures]


def _stable_seed(identifier: str, base: int) -> int:
    return (zlib.crc32(identifier.encode()) ^ base) & 0x7FFFFFFF


def _enum_states(
    observations: Sequence[EsvObservation], series: UiSeries
) -> Dict[int, str]:
    """Map each raw state value to the text most often shown with it."""
    votes: Dict[int, Dict[str, int]] = {}
    samples = series.samples
    if not samples:
        return {}
    sample_index = 0
    for obs in observations:
        while (
            sample_index + 1 < len(samples)
            and abs(samples[sample_index + 1].timestamp - obs.timestamp)
            <= abs(samples[sample_index].timestamp - obs.timestamp)
        ):
            sample_index += 1
        nearest = samples[sample_index]
        if abs(nearest.timestamp - obs.timestamp) > 1.5:
            continue
        raw = obs.as_int()
        votes.setdefault(raw, {}).setdefault(nearest.text, 0)
        votes[raw][nearest.text] += 1
    return {
        raw: max(texts.items(), key=lambda item: item[1])[0]
        for raw, texts in votes.items()
    }
