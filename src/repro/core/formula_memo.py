"""On-disk memo store for inferred formulas: solve each ESV dataset once.

Fleet sweeps re-run GP inference over datasets that have not changed —
a resumed run redoes every car the checkpoint missed, and repeated
evaluation runs (benchmarks, ablations with identical GP settings) redo
everything.  Per-ESV inference is a pure function of its dataset and its
:class:`~repro.core.gp.GpConfig`, so its result can be memoised on disk
and reused across runs and across processes.

Keying: SHA-256 over the canonical JSON of the ESV's raw observations
(protocol, formula-type byte, timestamps, wire bytes), the UI series'
numeric samples, the pairing gap, the requested inference backend
(``gp``/``linear``/``hybrid`` — different engines may legitimately
produce different formulas for the same dataset, so a warm recall must
never cross backends), and every field of the ``GpConfig`` (the per-ESV
derived seed included).  Anything that could change the inferred formula
changes the key; the ESV identifier itself is *not* part of the key
except through the derived seed, so byte-identical datasets share an
entry.

Entries are one JSON file per key, written with
:func:`repro.persistence.write_json_atomic` — concurrent writers (process
backend workers racing on the same ESV) atomically replace the file with
identical content, and a killed run never leaves a torn entry.  Corrupt
or version-mismatched entries are treated as misses and recomputed, never
trusted.

The stored formula is kind-tagged: GP results store the
:class:`~repro.core.response_analysis.ScaledTreeFormula` payload (folded
tree tokens + Tab. 2 factors), linear results the
:class:`~repro.core.inference.LinearFormula` payload (dictionary terms +
coefficients).  Both round-trip exactly: a warm run's report is
byte-identical to the cold run's, an invariant the memo tests and the
perf bench assert.
"""

from __future__ import annotations

import threading
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from ..persistence import canonical_digest, read_json, write_json_atomic
from .fields import EsvObservation
from .gp import GpConfig
from .inference import LinearFormula
from .response_analysis import InferredFormula, ScaledTreeFormula
from .screenshot import UiSeries

#: Bumped 1 → 2 with the backend-tagged key and kind-tagged formula
#: payloads.  The version sits inside the key material, so every v1 entry
#: simply stops being addressed (and reads as a miss if ever touched) —
#: no migration, no risk of decoding a foreign format.
MEMO_FORMAT_VERSION = 2
_PREFIX = "formula-"


def gp_config_fingerprint(config: GpConfig) -> dict:
    """Every field of the config as a JSON-able dict (order-independent)."""
    fingerprint = {}
    for field in dataclass_fields(config):
        value = getattr(config, field.name)
        if isinstance(value, tuple):
            value = list(value)
        fingerprint[field.name] = value
    return fingerprint


def dataset_key(
    observations: Sequence[EsvObservation],
    series: UiSeries,
    config: GpConfig,
    max_gap_s: float = 1.5,
    backend: str = "gp",
) -> str:
    """The memo key for one ESV inference task.

    ``backend`` is the *requested* inference backend, not the engine that
    ends up producing the formula — a hybrid run's GP-tail entries live
    under hybrid keys, so switching ``formula_backend`` between runs can
    never replay a recall from another backend's store.
    """
    return canonical_digest(
        {
            "memo_version": MEMO_FORMAT_VERSION,
            "backend": backend,
            "observations": [
                [o.protocol, o.formula_type, o.timestamp, o.raw_bytes.hex()]
                for o in observations
            ],
            "samples": [[s.timestamp, s.value] for s in series.numeric_samples],
            "max_gap_s": max_gap_s,
            "gp_config": gp_config_fingerprint(config),
        }
    )


class FormulaMemo:
    """Directory of memoised per-ESV inference results."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalid = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{_PREFIX}{key}.json"

    # ------------------------------------------------------------------ lookup

    def get(self, key: str) -> Tuple[bool, Optional[InferredFormula]]:
        """``(hit, formula)`` — a stored "no formula" result hits with None."""
        path = self._path(key)
        if not path.exists():
            with self._lock:
                self.misses += 1
            return False, None
        try:
            entry = read_json(path)
            inferred = self._decode(entry)
        except (ValueError, KeyError, TypeError):
            # Torn, corrupt or foreign-format entries are recomputed, and
            # the fresh result overwrites the bad file.
            with self._lock:
                self.invalid += 1
                self.misses += 1
            return False, None
        with self._lock:
            self.hits += 1
        return True, inferred

    @staticmethod
    def _decode(entry: object) -> Optional[InferredFormula]:
        if not isinstance(entry, dict):
            raise ValueError("memo entry is not an object")
        if entry.get("format_version") != MEMO_FORMAT_VERSION:
            raise ValueError(f"unsupported memo format {entry.get('format_version')!r}")
        if not entry["found"]:
            return None
        payload = entry["formula"]
        kind = payload.get("kind", "tree")
        if kind == "tree":
            formula = ScaledTreeFormula.from_payload(payload)
        elif kind == "linear":
            formula = LinearFormula.from_payload(payload)
        else:
            raise ValueError(f"unknown formula kind {kind!r}")
        return InferredFormula(
            formula=formula,
            description=formula.describe(),
            fitness=float(entry["fitness"]),
            interpretation=entry["interpretation"],
            n_samples=int(entry["n_samples"]),
            generations=int(entry["generations"]),
            backend=str(entry.get("backend", "gp")),
            confidence=float(entry.get("confidence", 1.0)),
        )

    # ------------------------------------------------------------------- store

    def put(self, key: str, inferred: Optional[InferredFormula]) -> Path:
        """Record an inference outcome (``None`` = too few samples paired)."""
        entry: dict = {"format_version": MEMO_FORMAT_VERSION, "found": inferred is not None}
        if inferred is not None:
            if isinstance(inferred.formula, ScaledTreeFormula):
                payload = {"kind": "tree", **inferred.formula.to_payload()}
            elif isinstance(inferred.formula, LinearFormula):
                payload = {"kind": "linear", **inferred.formula.to_payload()}
            else:
                raise TypeError(
                    "only ScaledTreeFormula/LinearFormula results are "
                    f"memoisable, got {type(inferred.formula).__name__}"
                )
            entry.update(
                {
                    "interpretation": inferred.interpretation,
                    "fitness": inferred.fitness,
                    "n_samples": inferred.n_samples,
                    "generations": inferred.generations,
                    "backend": inferred.backend,
                    "confidence": inferred.confidence,
                    "formula": payload,
                }
            )
        path = write_json_atomic(self._path(key), entry)
        with self._lock:
            self.stores += 1
        return path

    # ------------------------------------------------------------------- misc

    def __len__(self) -> int:
        return sum(1 for __ in self.directory.glob(f"{_PREFIX}*.json"))

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalid": self.invalid,
            }
