"""Fitness caching for the GP engine.

Tournament selection re-picks the fittest individuals as parents over and
over, elitism re-inserts the champion every generation, and point/constant
mutation frequently reproduces the parent verbatim — so across a run many
structurally identical trees are evaluated repeatedly.  Fitness depends
only on the tree's structure and the (fixed) dataset, so one evaluation
per distinct structure suffices.

A :class:`FitnessCache` is bound to exactly one dataset: the engine
creates a fresh one per :meth:`~repro.core.gp.engine.GeneticProgrammer.fit`
call, and :mod:`repro.core.response_analysis` shares one across the
restart attempts of a single ESV (same scaled dataset, different seeds),
where the seeded initial shapes hit immediately.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

_MISSING = object()


class FitnessCache:
    """Memoises fitness per canonical tree key (see :func:`tree_key`)."""

    def __init__(self, max_entries: int = 100_000) -> None:
        self._table: Dict[Tuple, float] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Materialised constant arrays, shared by the compiled executor
        #: across every engine bound to this cache (same dataset length).
        self.const_arrays: dict = {}

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: Tuple) -> Optional[float]:
        value = self._table.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: Tuple, value: float) -> None:
        if len(self._table) >= self.max_entries:
            # Epoch eviction: dropping the whole table keeps put() O(1)
            # without an LRU list; at the default cap this triggers only
            # on pathological runs, costing re-evaluation, never wrong
            # results.
            self._table.clear()
            self.evictions += 1
        self._table[key] = value

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
        }
