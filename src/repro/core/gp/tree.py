"""Expression trees for genetic programming.

GP represents formulas as syntax trees (§3.5): interior nodes are functions
from the 14-function set, leaves are raw-variable references (``X0``,
``X1``) or floating-point constants.  Trees evaluate vectorised over the
whole dataset.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .functions import FUNCTION_SET, GpFunction


class Node:
    """One tree node: a function application, a variable, or a constant."""

    __slots__ = ("function", "children", "var_index", "constant")

    def __init__(
        self,
        function: Optional[GpFunction] = None,
        children: Optional[List["Node"]] = None,
        var_index: Optional[int] = None,
        constant: Optional[float] = None,
    ) -> None:
        self.function = function
        self.children = children or []
        self.var_index = var_index
        self.constant = constant

    # ------------------------------------------------------------ constructors

    @classmethod
    def var(cls, index: int) -> "Node":
        return cls(var_index=index)

    @classmethod
    def const(cls, value: float) -> "Node":
        return cls(constant=float(value))

    @classmethod
    def call(cls, name: str, *children: "Node") -> "Node":
        function = FUNCTION_SET[name]
        if len(children) != function.arity:
            raise ValueError(f"{name} takes {function.arity} children, got {len(children)}")
        return cls(function=function, children=list(children))

    # ----------------------------------------------------------------- queries

    @property
    def is_terminal(self) -> bool:
        return self.function is None

    def size(self) -> int:
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            if node.children:
                stack.extend(node.children)
        return count

    def depth(self) -> int:
        max_depth = 1
        stack = [(self, 1)]
        while stack:
            node, level = stack.pop()
            children = node.children
            if children:
                level += 1
                if level > max_depth:
                    max_depth = level
                for child in children:
                    stack.append((child, level))
        return max_depth

    def variables_used(self) -> set:
        if self.is_terminal:
            return {self.var_index} if self.var_index is not None else set()
        used: set = set()
        for child in self.children:
            used |= child.variables_used()
        return used

    # -------------------------------------------------------------- evaluation

    def evaluate(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Vectorised evaluation: ``columns[i]`` holds variable i's samples."""
        if self.var_index is not None:
            return columns[self.var_index]
        if self.constant is not None:
            return np.full_like(columns[0], self.constant, dtype=float)
        args = [child.evaluate(columns) for child in self.children]
        with np.errstate(all="ignore"):
            return self.function.func(*args)

    def evaluate_point(self, xs: Sequence[float]) -> float:
        """Evaluate at a single sample without building length-1 arrays.

        Uses the functions' bit-identical ``scalar`` variants (verification
        runs this once per sample, so the array path's per-node numpy
        overhead used to dominate every bench).  Falls back to the
        vectorised path for custom functions with no scalar form.
        """
        if self.var_index is not None:
            return float(xs[self.var_index])
        if self.constant is not None:
            return float(self.constant)
        scalar = self.function.scalar
        if scalar is None:
            columns = [np.asarray([float(x)]) for x in xs]
            return float(self.evaluate(columns)[0])
        return float(scalar(*(child.evaluate_point(xs) for child in self.children)))

    # ------------------------------------------------------------ manipulation

    def copy(self) -> "Node":
        # Breeding copies hundreds of thousands of nodes per fit; going
        # through __new__ skips the __init__ defaults-and-fallbacks dance.
        clone = Node.__new__(Node)
        clone.function = self.function
        clone.children = [child.copy() for child in self.children]
        clone.var_index = self.var_index
        clone.constant = self.constant
        return clone

    def copy_with_nodes(self) -> Tuple["Node", List["Node"]]:
        """Copy the tree and return the copy's pre-order node list too.

        The breeding operators always need both (copy, then pick a node in
        the copy); fusing them halves the tree walks per child.
        """
        out: List[Node] = []
        clone = self._copy_into(out)
        return clone, out

    def _copy_into(self, out: List["Node"]) -> "Node":
        clone = Node.__new__(Node)
        out.append(clone)
        children = self.children
        if children:
            clone.function = self.function
            clone.children = [child._copy_into(out) for child in children]
            clone.var_index = None
            clone.constant = None
        else:
            clone.function = None
            clone.children = []
            clone.var_index = self.var_index
            clone.constant = self.constant
        return clone

    def nodes(self) -> List["Node"]:
        """Pre-order list of all nodes (self included)."""
        out = []
        stack = [self]
        while stack:
            node = stack.pop()
            out.append(node)
            children = node.children
            if children:
                # Push right-to-left so the left subtree pops first,
                # preserving the recursive pre-order.
                if len(children) == 2:
                    stack.append(children[1])
                    stack.append(children[0])
                elif len(children) == 1:
                    stack.append(children[0])
                else:  # pragma: no cover - no arity>2 functions in the set
                    stack.extend(reversed(children))
        return out

    def replace_child(self, old: "Node", new: "Node") -> bool:
        """Replace ``old`` (by identity) anywhere in the subtree."""
        for index, child in enumerate(self.children):
            if child is old:
                self.children[index] = new
                return True
            if child.replace_child(old, new):
                return True
        return False

    # ------------------------------------------------------------------ output

    def to_infix(self) -> str:
        if self.var_index is not None:
            return f"X{self.var_index}"
        if self.constant is not None:
            return f"{self.constant:g}"
        parts = [child.to_infix() for child in self.children]
        return self.function.fmt.format(*parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.to_infix()}>"


def random_tree(
    rng: random.Random,
    n_variables: int,
    function_names: Sequence[str],
    max_depth: int = 4,
    const_range: float = 10.0,
    grow: bool = True,
) -> Node:
    """Generate a random tree (grow or full initialisation).

    Initial populations (and restart populations) allocate hundreds of
    thousands of nodes per inference run, so nodes are built through
    ``__new__`` directly; the rng call sequence matches the naive
    ``Node.var``/``Node.const`` construction exactly.
    """
    node = Node.__new__(Node)
    if max_depth <= 1 or (grow and rng.random() < 0.3):
        node.function = None
        node.children = []
        if rng.random() < 0.7:
            node.var_index = rng.randrange(n_variables)
            node.constant = None
        else:
            node.var_index = None
            node.constant = round(rng.uniform(-const_range, const_range), 3)
        return node
    function = FUNCTION_SET[rng.choice(function_names)]
    node.function = function
    node.children = [
        random_tree(rng, n_variables, function_names, max_depth - 1, const_range, grow)
        for __ in range(function.arity)
    ]
    node.var_index = None
    node.constant = None
    return node
