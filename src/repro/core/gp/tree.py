"""Expression trees for genetic programming.

GP represents formulas as syntax trees (§3.5): interior nodes are functions
from the 14-function set, leaves are raw-variable references (``X0``,
``X1``) or floating-point constants.  Trees evaluate vectorised over the
whole dataset.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

import numpy as np

from .functions import FUNCTION_SET, GpFunction


class Node:
    """One tree node: a function application, a variable, or a constant."""

    __slots__ = ("function", "children", "var_index", "constant")

    def __init__(
        self,
        function: Optional[GpFunction] = None,
        children: Optional[List["Node"]] = None,
        var_index: Optional[int] = None,
        constant: Optional[float] = None,
    ) -> None:
        self.function = function
        self.children = children or []
        self.var_index = var_index
        self.constant = constant

    # ------------------------------------------------------------ constructors

    @classmethod
    def var(cls, index: int) -> "Node":
        return cls(var_index=index)

    @classmethod
    def const(cls, value: float) -> "Node":
        return cls(constant=float(value))

    @classmethod
    def call(cls, name: str, *children: "Node") -> "Node":
        function = FUNCTION_SET[name]
        if len(children) != function.arity:
            raise ValueError(f"{name} takes {function.arity} children, got {len(children)}")
        return cls(function=function, children=list(children))

    # ----------------------------------------------------------------- queries

    @property
    def is_terminal(self) -> bool:
        return self.function is None

    def size(self) -> int:
        if self.is_terminal:
            return 1
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if self.is_terminal:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def variables_used(self) -> set:
        if self.is_terminal:
            return {self.var_index} if self.var_index is not None else set()
        used: set = set()
        for child in self.children:
            used |= child.variables_used()
        return used

    # -------------------------------------------------------------- evaluation

    def evaluate(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Vectorised evaluation: ``columns[i]`` holds variable i's samples."""
        if self.var_index is not None:
            return columns[self.var_index]
        if self.constant is not None:
            return np.full_like(columns[0], self.constant, dtype=float)
        args = [child.evaluate(columns) for child in self.children]
        with np.errstate(all="ignore"):
            return self.function.func(*args)

    def evaluate_point(self, xs: Sequence[float]) -> float:
        columns = [np.asarray([float(x)]) for x in xs]
        return float(self.evaluate(columns)[0])

    # ------------------------------------------------------------ manipulation

    def copy(self) -> "Node":
        if self.is_terminal:
            return Node(var_index=self.var_index, constant=self.constant)
        return Node(function=self.function, children=[c.copy() for c in self.children])

    def nodes(self) -> List["Node"]:
        """Pre-order list of all nodes (self included)."""
        out = [self]
        for child in self.children:
            out.extend(child.nodes())
        return out

    def replace_child(self, old: "Node", new: "Node") -> bool:
        """Replace ``old`` (by identity) anywhere in the subtree."""
        for index, child in enumerate(self.children):
            if child is old:
                self.children[index] = new
                return True
            if child.replace_child(old, new):
                return True
        return False

    # ------------------------------------------------------------------ output

    def to_infix(self) -> str:
        if self.var_index is not None:
            return f"X{self.var_index}"
        if self.constant is not None:
            return f"{self.constant:g}"
        parts = [child.to_infix() for child in self.children]
        return self.function.fmt.format(*parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.to_infix()}>"


def random_tree(
    rng: random.Random,
    n_variables: int,
    function_names: Sequence[str],
    max_depth: int = 4,
    const_range: float = 10.0,
    grow: bool = True,
) -> Node:
    """Generate a random tree (grow or full initialisation)."""
    if max_depth <= 1 or (grow and rng.random() < 0.3):
        if rng.random() < 0.7:
            return Node.var(rng.randrange(n_variables))
        return Node.const(round(rng.uniform(-const_range, const_range), 3))
    function = FUNCTION_SET[rng.choice(list(function_names))]
    children = [
        random_tree(rng, n_variables, function_names, max_depth - 1, const_range, grow)
        for __ in range(function.arity)
    ]
    return Node(function=function, children=children)
