"""Genetic-programming symbolic regression (the paper's formula inference)."""

from .functions import DEFAULT_FUNCTION_NAMES, FUNCTION_SET, GpFunction
from .tree import Node, random_tree
from .batch import BatchEvaluator, MaesRequest, batched_maes, drive
from .cache import FitnessCache
from .compile import CompiledProgram, compile_tree, prime_instruction_tables, tree_key
from .engine import GeneticProgrammer, GpConfig, GpResult, polish_constants
from .serialize import tree_from_tokens, tree_to_tokens
from .simplify import fold_constants, pretty

__all__ = [
    "BatchEvaluator",
    "MaesRequest",
    "batched_maes",
    "drive",
    "DEFAULT_FUNCTION_NAMES",
    "FUNCTION_SET",
    "GpFunction",
    "Node",
    "random_tree",
    "FitnessCache",
    "CompiledProgram",
    "compile_tree",
    "prime_instruction_tables",
    "tree_key",
    "tree_to_tokens",
    "tree_from_tokens",
    "GeneticProgrammer",
    "GpConfig",
    "GpResult",
    "polish_constants",
    "fold_constants",
    "pretty",
]
