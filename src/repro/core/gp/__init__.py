"""Genetic-programming symbolic regression (the paper's formula inference)."""

from .functions import DEFAULT_FUNCTION_NAMES, FUNCTION_SET, GpFunction
from .tree import Node, random_tree
from .engine import GeneticProgrammer, GpConfig, GpResult, polish_constants
from .simplify import fold_constants, pretty

__all__ = [
    "DEFAULT_FUNCTION_NAMES",
    "FUNCTION_SET",
    "GpFunction",
    "Node",
    "random_tree",
    "GeneticProgrammer",
    "GpConfig",
    "GpResult",
    "polish_constants",
    "fold_constants",
    "pretty",
]
