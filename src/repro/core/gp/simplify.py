"""Constant folding and pretty-printing for evolved trees.

Evolved formulas accumulate dead weight (``(X0 * 1) + 0``); folding them
makes the reported expressions readable, mirroring the compact formulas
printed in the paper's Tab. 5/7.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .tree import Node


def fold_constants(tree: Node) -> Node:
    """Recursively evaluate constant subtrees and apply identity rules."""
    if tree.is_terminal:
        return tree.copy()
    children = [fold_constants(child) for child in tree.children]
    node = Node(function=tree.function, children=children)

    # Pure-constant subtree: evaluate it once.
    if all(c.constant is not None for c in children):
        try:
            value = node.evaluate_point([0.0])
        except (ValueError, OverflowError, ZeroDivisionError):
            return node
        if math.isfinite(value):
            return Node.const(round(value, 10))

    name = tree.function.name
    a = children[0]
    b = children[1] if len(children) > 1 else None

    if name == "add":
        if _is_const(a, 0.0):
            return b
        if _is_const(b, 0.0):
            return a
    if name == "sub" and _is_const(b, 0.0):
        return a
    if name == "mul":
        if _is_const(a, 1.0):
            return b
        if _is_const(b, 1.0):
            return a
        if _is_const(a, 0.0) or _is_const(b, 0.0):
            return Node.const(0.0)
    if name == "div" and _is_const(b, 1.0):
        return a
    if name == "neg" and a.constant is not None:
        return Node.const(-a.constant)
    return node


def _is_const(node: Optional[Node], value: float) -> bool:
    return node is not None and node.constant is not None and abs(node.constant - value) < 1e-12


def pretty(tree: Node, y_name: str = "Y") -> str:
    """Render a folded tree as ``"Y = <expr>"``."""
    return f"{y_name} = {fold_constants(tree).to_infix()}"
