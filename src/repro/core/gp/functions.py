"""The GP function set.

§6 of the paper: *"DP-Reverser supports 14 kinds of functions (e.g.
addition, subtraction, multiplication, division, square root, log, absolute
value, negative, maximum) in the genetic programming library"*.  We
implement exactly fourteen, with the protected variants symbolic-regression
systems (gplearn included) use so that evolution never crashes on a bad
operand: protected division returns 1 near zero denominators, protected
sqrt/log operate on magnitudes.

All functions are vectorised over numpy arrays — fitness evaluation runs
each candidate formula over the whole dataset in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

_EPS = 1e-9


def _protected_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(np.abs(b) > _EPS, a / np.where(np.abs(b) > _EPS, b, 1.0), 1.0)
    return out


def _protected_sqrt(a: np.ndarray) -> np.ndarray:
    return np.sqrt(np.abs(a))


def _protected_log(a: np.ndarray) -> np.ndarray:
    return np.where(np.abs(a) > _EPS, np.log(np.abs(np.where(np.abs(a) > _EPS, a, 1.0))), 0.0)


def _protected_inv(a: np.ndarray) -> np.ndarray:
    return _protected_div(np.ones_like(a), a)


@dataclass(frozen=True)
class GpFunction:
    """One interior-node operator."""

    name: str
    arity: int
    func: Callable[..., np.ndarray]
    fmt: str  # printf-style template with {0}, {1} slots


FUNCTION_SET: Dict[str, GpFunction] = {
    f.name: f
    for f in [
        GpFunction("add", 2, np.add, "({0} + {1})"),
        GpFunction("sub", 2, np.subtract, "({0} - {1})"),
        GpFunction("mul", 2, np.multiply, "({0} * {1})"),
        GpFunction("div", 2, _protected_div, "({0} / {1})"),
        GpFunction("sqrt", 1, _protected_sqrt, "sqrt({0})"),
        GpFunction("log", 1, _protected_log, "log({0})"),
        GpFunction("abs", 1, np.abs, "abs({0})"),
        GpFunction("neg", 1, np.negative, "(-{0})"),
        GpFunction("max", 2, np.maximum, "max({0}, {1})"),
        GpFunction("min", 2, np.minimum, "min({0}, {1})"),
        GpFunction("sin", 1, np.sin, "sin({0})"),
        GpFunction("cos", 1, np.cos, "cos({0})"),
        GpFunction("inv", 1, _protected_inv, "(1 / {0})"),
        GpFunction("square", 1, np.square, "({0}^2)"),
    ]
}

assert len(FUNCTION_SET) == 14, "the paper's prototype supports 14 functions"

#: Default subset used for evolution.  Trig stays out of the default mix
#: (vehicle formulas are arithmetic); it remains available via
#: ``GeneticProgrammer(function_names=...)``.
DEFAULT_FUNCTION_NAMES: Tuple[str, ...] = (
    "add", "sub", "mul", "div", "sqrt", "log", "abs", "neg", "max", "min",
    "inv", "square",
)
