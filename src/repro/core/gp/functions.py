"""The GP function set.

§6 of the paper: *"DP-Reverser supports 14 kinds of functions (e.g.
addition, subtraction, multiplication, division, square root, log, absolute
value, negative, maximum) in the genetic programming library"*.  We
implement exactly fourteen, with the protected variants symbolic-regression
systems (gplearn included) use so that evolution never crashes on a bad
operand: protected division returns 1 near zero denominators, protected
sqrt/log operate on magnitudes.

All functions are vectorised over numpy arrays — fitness evaluation runs
each candidate formula over the whole dataset in one call.  Each function
additionally carries a ``scalar`` variant used by the per-sample fast path
(:meth:`repro.core.gp.tree.Node.evaluate_point`): plain-float arithmetic
for the operations IEEE 754 makes exactly reproducible, and the numpy
ufunc itself for the transcendentals (whose vectorised loops are the only
bit-exact reference), so scalar and vectorised evaluation agree bit for
bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

_EPS = 1e-9


def _protected_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(np.abs(b) > _EPS, a / np.where(np.abs(b) > _EPS, b, 1.0), 1.0)
    return out


def _protected_sqrt(a: np.ndarray) -> np.ndarray:
    return np.sqrt(np.abs(a))


def _protected_log(a: np.ndarray) -> np.ndarray:
    return np.where(np.abs(a) > _EPS, np.log(np.abs(np.where(np.abs(a) > _EPS, a, 1.0))), 0.0)


def _protected_inv(a: np.ndarray) -> np.ndarray:
    return _protected_div(np.ones_like(a), a)


# ------------------------------------------------------------ scalar variants
#
# add/sub/mul/div/abs/neg/max/min/square and protected sqrt are exactly
# rounded under IEEE 754, so plain-float arithmetic is guaranteed to match
# the float64 ufunc loops bit for bit.  log/sin/cos are *not* correctly
# rounded in general, so their scalar variants call the same numpy ufunc
# (a 0-d call runs the identical inner loop the vectorised path runs).


def _scalar_div(a: float, b: float) -> float:
    return a / b if abs(b) > _EPS else 1.0


def _scalar_sqrt(a: float) -> float:
    return math.sqrt(abs(a))


def _scalar_log(a: float) -> float:
    return float(np.log(abs(a))) if abs(a) > _EPS else 0.0


def _scalar_inv(a: float) -> float:
    return 1.0 / a if abs(a) > _EPS else 1.0


def _scalar_max(a: float, b: float) -> float:
    if a != a or b != b:  # np.maximum propagates NaN; Python's max does not
        return float("nan")
    return a if a > b else b


def _scalar_min(a: float, b: float) -> float:
    if a != a or b != b:
        return float("nan")
    return a if a < b else b


@dataclass(frozen=True)
class GpFunction:
    """One interior-node operator."""

    name: str
    arity: int
    func: Callable[..., np.ndarray]
    fmt: str  # printf-style template with {0}, {1} slots
    #: Bit-identical plain-float variant (None for custom functions that
    #: only define the vectorised form; evaluation falls back to arrays).
    scalar: Optional[Callable[..., float]] = None

    def __reduce__(self):
        # Pickle by name: the lambda ``scalar`` variants defeat the default
        # protocol, and by-name reconstruction makes unpickled trees point
        # at the interned FUNCTION_SET entries — which the process GP
        # backend relies on for cross-process tree transport.
        return (_function_from_name, (self.name,))


FUNCTION_SET: Dict[str, GpFunction] = {
    f.name: f
    for f in [
        GpFunction("add", 2, np.add, "({0} + {1})", lambda a, b: a + b),
        GpFunction("sub", 2, np.subtract, "({0} - {1})", lambda a, b: a - b),
        GpFunction("mul", 2, np.multiply, "({0} * {1})", lambda a, b: a * b),
        GpFunction("div", 2, _protected_div, "({0} / {1})", _scalar_div),
        GpFunction("sqrt", 1, _protected_sqrt, "sqrt({0})", _scalar_sqrt),
        GpFunction("log", 1, _protected_log, "log({0})", _scalar_log),
        GpFunction("abs", 1, np.abs, "abs({0})", abs),
        GpFunction("neg", 1, np.negative, "(-{0})", lambda a: -a),
        GpFunction("max", 2, np.maximum, "max({0}, {1})", _scalar_max),
        GpFunction("min", 2, np.minimum, "min({0}, {1})", _scalar_min),
        GpFunction("sin", 1, np.sin, "sin({0})", lambda a: float(np.sin(a))),
        GpFunction("cos", 1, np.cos, "cos({0})", lambda a: float(np.cos(a))),
        GpFunction("inv", 1, _protected_inv, "(1 / {0})", _scalar_inv),
        GpFunction("square", 1, np.square, "({0}^2)", lambda a: a * a),
    ]
}

assert len(FUNCTION_SET) == 14, "the paper's prototype supports 14 functions"


def _function_from_name(name: str) -> GpFunction:
    """Unpickle hook for :meth:`GpFunction.__reduce__`."""
    return FUNCTION_SET[name]

#: Default subset used for evolution.  Trig stays out of the default mix
#: (vehicle formulas are arithmetic); it remains available via
#: ``GeneticProgrammer(function_names=...)``.
DEFAULT_FUNCTION_NAMES: Tuple[str, ...] = (
    "add", "sub", "mul", "div", "sqrt", "log", "abs", "neg", "max", "min",
    "inv", "square",
)
