"""Compiled evaluation of expression trees.

The recursive :meth:`~repro.core.gp.tree.Node.evaluate` pays per node for a
Python call, an ``np.errstate`` enter/exit and a child-list allocation —
dominating GP fitness evaluation, where a population of hundreds of small
trees is evaluated every generation over short column arrays.

:func:`compile_tree` flattens a tree once (a single pre-order walk) into a
postfix program: variable loads, constant loads, and function applications
executed over an operand stack of numpy arrays.  The program applies the
*same* function primitives to the *same* operands in the *same* order the
recursive evaluator does, so results are bit-identical — the property the
engine's serial==parallel and compiled==interpreted digest invariants rest
on.  The same walk also yields the tree's size, depth and a canonical
structural key, so the parsimony penalty and the fitness cache
(:mod:`repro.core.gp.cache`) stop re-walking trees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tree import Node

#: Program opcodes.
OP_VAR = 0  # push columns[payload]
OP_CONST = 1  # push a full array of the constant
OP_CALL1 = 2  # pop one operand, push payload(operand)
OP_CALL2 = 3  # pop two operands, push payload(a, b)


class CompiledProgram:
    """A flattened expression tree: postfix code plus structural metadata."""

    __slots__ = ("code", "size", "key")

    def __init__(
        self,
        code: List[Tuple[int, object]],
        size: int,
        key: Tuple,
    ) -> None:
        self.code = code
        self.size = size
        self.key = key

    @property
    def depth(self) -> int:
        """Tree depth, folded from the code on demand.

        Lazy because the engine's hot loop never reads it — population
        evaluation only needs :attr:`size` (parsimony) and :attr:`key`
        (cache) — so :func:`compile_tree` skips the depth bookkeeping.
        """
        depths: List[int] = []
        pop = depths.pop
        push = depths.append
        for op, __ in self.code:
            if op == OP_CALL2:
                right = pop()
                left = pop()
                push((right if right > left else left) + 1)
            elif op == OP_CALL1:
                push(pop() + 1)
            else:
                push(1)
        return depths[-1]

    def execute(
        self,
        columns: Sequence[np.ndarray],
        const_cache: Optional[Dict[float, np.ndarray]] = None,
    ) -> np.ndarray:
        """Run the program over the dataset's column arrays.

        ``const_cache`` (owned by the caller, valid for one dataset) reuses
        the materialised constant arrays across evaluations; the arrays are
        never mutated downstream, so sharing is safe.
        """
        with np.errstate(all="ignore"):
            return self.execute_unchecked(columns, const_cache)

    def execute_unchecked(
        self,
        columns: Sequence[np.ndarray],
        const_cache: Optional[Dict[float, np.ndarray]] = None,
    ) -> np.ndarray:
        """:meth:`execute` without the ``np.errstate`` guard.

        For callers that already hold an ``errstate(all="ignore")`` context
        around a whole batch of executions — entering/leaving the context
        per tree is measurable at population scale.
        """
        stack: List[np.ndarray] = []
        push = stack.append
        pop = stack.pop
        template = columns[0]
        for op, payload in self.code:
            if op == OP_CALL2:
                b = pop()
                push(payload(pop(), b))
            elif op == OP_CALL1:
                push(payload(pop()))
            elif op == OP_VAR:
                push(columns[payload])
            else:  # OP_CONST
                if const_cache is None:
                    push(np.full_like(template, payload, dtype=float))
                else:
                    array = const_cache.get(payload)
                    if array is None:
                        array = np.full_like(template, payload, dtype=float)
                        const_cache[payload] = array
                    push(array)
        return stack[-1]


#: Interned ``(OP_VAR, i)`` instructions for the low variable indices
#: every real dataset uses (grown on demand).
_VAR_INSTR: Dict[int, Tuple[int, int]] = {}

#: Interned call/constant instructions.  Call entries are keyed by the
#: function *name* — the same identity the canonical key uses — so two
#: functions sharing a name would collide here exactly as they already
#: would in the fitness cache.  Constant entries are keyed by float
#: equality (which folds ``-0.0`` onto ``0.0``; the protected primitives
#: cannot distinguish the two, so fitness is unaffected).
_INSTR: Dict[object, Tuple[int, object]] = {}


def compile_tree(tree: Node) -> CompiledProgram:
    """Flatten ``tree`` into a :class:`CompiledProgram` (one walk).

    Uses the reversed right-first pre-order trick: visiting ``(root,
    right, left)`` and reversing yields the ``(left, right, root)``
    postfix order, so no sentinel bookkeeping is needed.

    Because every instruction is interned (one tuple object per distinct
    variable, constant, or function), the instruction sequence itself is
    the canonical structural key — ``tuple(code)`` — with no separate
    token list to build.
    """
    # Right-first pre-order walk; reversed(walk) is postfix order.
    walk: List[Node] = []
    stack: List[Node] = [tree]
    while stack:
        node = stack.pop()
        walk.append(node)
        if node.children:
            stack.extend(node.children)  # right child pops (visits) first

    code: List[Tuple[int, object]] = []
    append = code.append
    for node in reversed(walk):
        var_index = node.var_index
        if var_index is not None:
            instr = _VAR_INSTR.get(var_index)
            if instr is None:
                instr = _VAR_INSTR[var_index] = (OP_VAR, var_index)
            append(instr)
            continue
        constant = node.constant
        if constant is not None:
            instr = _INSTR.get(constant)
            if instr is None:
                instr = _INSTR[constant] = (OP_CONST, constant)
            append(instr)
            continue
        name = node.function.name
        instr = _INSTR.get(name)
        if instr is None:
            function = node.function
            opcode = OP_CALL2 if function.arity == 2 else OP_CALL1
            instr = _INSTR[name] = (opcode, function.func)
        append(instr)
    return CompiledProgram(code, len(walk), tuple(code))


def prime_instruction_tables(
    function_names: Optional[Sequence[str]] = None, n_variables: int = 4
) -> None:
    """Pre-intern the instructions a GP run is guaranteed to need.

    Called from process-pool worker initializers so every worker starts
    with warm variable/function tables instead of growing them under the
    first population's compile burst.  Cheap and idempotent; the dominant
    worker warm-up cost (importing numpy and this package under a spawn
    start method) is paid simply by importing this module.
    """
    from .functions import FUNCTION_SET

    for index in range(n_variables):
        if index not in _VAR_INSTR:
            _VAR_INSTR[index] = (OP_VAR, index)
    for name in function_names or FUNCTION_SET:
        if name not in _INSTR:
            function = FUNCTION_SET[name]
            opcode = OP_CALL2 if function.arity == 2 else OP_CALL1
            _INSTR[name] = (opcode, function.func)


def tree_key(tree: Node) -> Tuple:
    """Canonical structural key: equal iff the trees are identical.

    The key is the postfix instruction sequence itself — interned
    ``(opcode, payload)`` tuples — which uniquely decodes because every
    instruction has a fixed arity, exactly like any RPN encoding.
    """
    return compile_tree(tree).key
