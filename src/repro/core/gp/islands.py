"""Island-model persistent workers for per-ESV formula inference.

The old ``process`` backend submits one task per ESV to a pool created
inside every :meth:`~repro.core.reverser.DPReverser.infer` call; each
submit pickles the full observation dataset through the pool pipe and
each call repays process spawn + warm-up.  On small per-ESV work that
overhead exceeds the GP itself — which is exactly what the gp_perf bench
recorded (process_speedup 0.83x).

The island backend removes every per-task and per-call cost:

* **persistent workers** — one :class:`IslandPool` per (workers,
  memo_dir, trace) configuration, cached at module level by
  :func:`shared_pool` and reused across infer calls, reversers, and
  service requests; spawn + instruction-table warm-up are paid once per
  process lifetime;
* **islands, not tasks** — each worker receives one message per infer
  call carrying its whole island (a round-robin slice of the ESVs) and
  evolves all of them through one cross-ESV
  :class:`~repro.core.gp.BatchEvaluator` pass;
* **shared-memory datasets** — the pickled islands travel through one
  :class:`~repro.runtime.shm.SharedBlobs` segment per infer call; the
  submit messages are ~100-byte ``(name, offset, length)`` descriptors.
  Hosts without POSIX shm fall back to inline blobs (one per island,
  still amortised over the island's ESVs);
* **small result/migrant messages** — workers send back only the lean
  :class:`~repro.core.reverser._TaskOutcome` list.  Islands deliberately
  exchange no mid-evolution migrants: every ESV's rng stream must stay
  private for reports to be byte-identical across backends, so the only
  cross-island channel is the shared on-disk formula memo, where any
  island's finished formula is recalled by any other island (and any
  later run) that sees the same dataset.

Determinism: island partitioning is a pure function of task order, each
ESV's evolution is driven by its own seeded generator, and the parent
merges outcomes in slot order — reports and fleet digests are
byte-identical to the serial backend.
"""

from __future__ import annotations

import atexit
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Tuple

from ...runtime.shm import SharedBlobs, create_blobs

#: Worker → parent descriptor for one island's task blob.
#: ``("shm", name, offset, length)`` or ``("inline", blob)``.
IslandDescriptor = Tuple


def _island_noop() -> None:
    """Warm-up task: forces a worker process to spawn and initialise."""


def _run_island(descriptor: IslandDescriptor) -> List:
    """Worker entry point: evolve one island of ESVs, batched.

    Imports are deferred — this module is imported by
    :mod:`repro.core.reverser` (lazily) and importing it back at module
    level would be circular.  Worker state (memo handle, trace flag) was
    installed by :func:`repro.core.reverser._gp_worker_init` when the
    process started.
    """
    from ...observability.trace import Tracer, activate
    from .. import reverser as _reverser

    if descriptor[0] == "shm":
        __, name, offset, length = descriptor
        blob = SharedBlobs.read(name, offset, length)
    else:
        blob = descriptor[1]
    tasks = pickle.loads(blob)
    if _reverser._WORKER_TRACE:
        tracer = Tracer()
        previous = activate(tracer)
        try:
            with tracer.span("gp_island", n_tasks=len(tasks)):
                outcomes = _reverser.run_batched_tasks(tasks, _reverser._WORKER_MEMO)
        finally:
            activate(previous)
        if outcomes:
            outcomes[0].spans = tracer.export_payload()
        return outcomes
    return _reverser.run_batched_tasks(tasks, _reverser._WORKER_MEMO)


class IslandPool:
    """Long-lived worker processes, each evolving islands of ESVs."""

    def __init__(self, workers: int, memo_dir: str = "", trace: bool = False) -> None:
        from ..reverser import _gp_worker_init

        self.workers = max(1, int(workers))
        self.memo_dir = str(memo_dir or "")
        self.trace = bool(trace)
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_gp_worker_init,
            initargs=(self.memo_dir, self.trace),
        )
        self._warmed = False

    @property
    def broken(self) -> bool:
        """True after a worker died; the pool must be rebuilt."""
        return bool(getattr(self._executor, "_broken", False))

    def warm(self) -> "IslandPool":
        """Spawn and initialise every worker now, off the timed path.

        ``ProcessPoolExecutor`` spawns one process per pending submit up
        to ``max_workers``, so ``workers`` no-op submits start the whole
        fleet; waiting on them guarantees the initialisers (instruction
        tables, memo handle) have run.
        """
        if not self._warmed:
            futures = [
                self._executor.submit(_island_noop) for __ in range(self.workers)
            ]
            for future in futures:
                future.result()
            self._warmed = True
        return self

    def run(self, tasks: List) -> List:
        """Execute every task, one submit per island, results flattened.

        The round-robin partition ``tasks[i::n]`` balances islands when
        per-ESV cost is roughly uniform and is a pure function of task
        order, so the outcome set (merged in slot order by the caller)
        is independent of worker scheduling.
        """
        if not tasks:
            return []
        n_islands = min(self.workers, len(tasks))
        islands = [tasks[i::n_islands] for i in range(n_islands)]
        blobs = [
            pickle.dumps(island, pickle.HIGHEST_PROTOCOL) for island in islands
        ]
        store = create_blobs(blobs)
        try:
            if store is None:
                futures = [
                    self._executor.submit(_run_island, ("inline", blob))
                    for blob in blobs
                ]
            else:
                futures = [
                    self._executor.submit(
                        _run_island, ("shm", store.name, offset, length)
                    )
                    for offset, length in store.slices
                ]
            self._warmed = True
            outcomes: List = []
            for future in futures:
                outcomes.extend(future.result())
            return outcomes
        finally:
            # Runs on success, worker crash (BrokenProcessPool out of
            # result()) and KeyboardInterrupt alike; the atexit hook in
            # repro.runtime.shm is the backstop for harder deaths.
            if store is not None:
                store.unlink()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


#: Pools shared across reversers and service requests, keyed by the
#: worker configuration that shaped their initialisers.
_SHARED_POOLS: Dict[Tuple[int, str, bool], IslandPool] = {}
_POOLS_LOCK = threading.Lock()


def shared_pool(workers: int, memo_dir: str = "", trace: bool = False) -> IslandPool:
    """The process-wide pool for a worker configuration, building it on
    first use and transparently replacing it after a worker crash.

    Thread-safe: the diagnostic service finalises sessions from several
    offload threads, any of which may be the one that builds the pool.
    """
    key = (max(1, int(workers)), str(memo_dir or ""), bool(trace))
    with _POOLS_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is not None and not pool.broken:
            return pool
        if pool is not None:
            pool.shutdown()
        pool = _SHARED_POOLS[key] = IslandPool(*key)
        return pool


def shutdown_shared_pools() -> None:
    """Tear down every cached pool (tests; also runs at interpreter exit)."""
    with _POOLS_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_shared_pools)
