"""The genetic-programming symbolic-regression engine (§3.5, Step 2).

Given samples ``(X, Y)`` the engine searches the space of expression trees
for ``f`` with ``f(X) ≈ Y``:

* a random initial population (ramped grow/full);
* tournament selection of parents;
* subtree crossover, subtree/point/constant mutation;
* fitness = mean absolute error, with a light parsimony pressure so the
  shortest formula among equals wins (the paper prints compact formulas);
* stopping on either criterion the paper names — generation budget
  exhausted, or a candidate's fitness crossing the threshold.

Constants are additionally polished with a final least-squares pass over
the best tree's linear parameters (standard symbolic-regression practice;
gplearn does the equivalent through point mutations over many more
generations — we trade generations for polish to keep the full 18-car
evaluation tractable in pure Python).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .batch import TRIM_FRACTION, MaesRequest, batched_linear_fit, batched_maes, drive
from .cache import FitnessCache
from .compile import CompiledProgram, compile_tree
from .functions import DEFAULT_FUNCTION_NAMES
from .tree import Node, random_tree


@dataclass
class GpConfig:
    """Evolution hyper-parameters.

    The paper's prototype used 30 generations x 1000 individuals (§4.3);
    those values work here too but the defaults are tuned smaller so the
    whole fleet evaluation runs in minutes — see the Tab. 8 bench for the
    cost comparison at both settings.
    """

    population_size: int = 300
    generations: int = 25
    tournament_size: int = 7
    crossover_prob: float = 0.7
    subtree_mutation_prob: float = 0.12
    point_mutation_prob: float = 0.1
    constant_mutation_prob: float = 0.08
    max_depth: int = 5
    init_depth: int = 3
    const_range: float = 10.0
    parsimony: float = 1e-3  # fitness penalty per tree node
    fitness_threshold: float = 5e-3  # stopping criterion (ii)
    function_names: Tuple[str, ...] = DEFAULT_FUNCTION_NAMES
    seed: int = 42
    #: Keijzer-style linear-scaling fitness.  Disable to emulate a vanilla
    #: gplearn-like engine (the paper's prototype), where the Tab. 2
    #: range normalisation carries the whole burden.
    linear_scaling: bool = True
    #: Evaluate trees through the flattened postfix programs of
    #: :mod:`repro.core.gp.compile` instead of the recursive
    #: :meth:`Node.evaluate`.  Bit-identical results (same primitives,
    #: same order), several times faster; off = the reference interpreter.
    compiled: bool = True
    #: Memoise fitness per canonical tree structure
    #: (:mod:`repro.core.gp.cache`).  Exact — a hit returns the float the
    #: evaluation produced — so results are unchanged either way.
    fitness_cache: bool = True
    #: Subsample-then-escalate fitness (OFF by default — it changes which
    #: trees win, so default results stay untouched): when > 0 and the
    #: dataset is larger, every candidate is first scored on this many
    #: evenly spaced samples and only the top :attr:`subsample_top`
    #: fraction is re-scored on the full dataset.
    subsample_size: int = 0
    #: Fraction of the population promoted to full evaluation in
    #: subsample mode.
    subsample_top: float = 0.3


@dataclass
class GpResult:
    """Outcome of one symbolic-regression run."""

    tree: Node
    fitness: float  # MAE on the training samples
    generations_run: int
    expression: str
    n_variables: int
    #: Fitness-cache statistics for this run (None when caching is off).
    cache_stats: Optional[dict] = None

    def predict(self, xs: Sequence[float]) -> float:
        return self.tree.evaluate_point(xs)


class GeneticProgrammer:
    """Evolves expression trees against a dataset.

    ``cache`` optionally injects a shared :class:`FitnessCache` (bound to
    one dataset) so several engine instances — e.g. the restart attempts
    of :mod:`repro.core.response_analysis` — reuse each other's
    evaluations.  When omitted, a fresh cache is created per :meth:`fit`.
    """

    def __init__(
        self,
        config: Optional[GpConfig] = None,
        cache: Optional[FitnessCache] = None,
    ) -> None:
        self.config = config or GpConfig()
        self._shared_cache = cache
        self._cache: Optional[FitnessCache] = None
        self._const_cache: dict = {}
        self._parent_nodes: dict = {}

    # ---------------------------------------------------------------- fitness

    TRIM_FRACTION = TRIM_FRACTION  # worst residuals ignored by the fitness

    def _scaled_mae(self, tree: Node, columns: List[np.ndarray], y: np.ndarray) -> float:
        """Trimmed MAE under the candidate's optimal linear scaling.

        Two standard robustness devices compose here:

        * *linear scaling* (Keijzer 2003) — fitness is computed after the
          candidate's optimal least-squares ``a*f(X)+b``, so GP concentrates
          on the formula's *shape* while scale/offset come for free (the
          same degrees of freedom the Tab. 2 pre/post-processing targets);
        * *trimming* — the worst ~8 % of residuals are excluded, first from
          the (re-fitted) scaling and then from the reported error, so OCR
          outliers that survived the §3.3 filter cannot reward clip-shaped
          trees (min/max plateaus) over the true formula.  This is the
          mechanical counterpart of the outlier robustness the paper
          attributes to GP (§4.4).
        """
        try:
            predictions = tree.evaluate(columns)
        except (ValueError, OverflowError):
            return float("inf")
        return self._mae_from_predictions(predictions, y)

    def _mae_from_predictions(self, predictions: np.ndarray, y: np.ndarray) -> float:
        """The shared back half of the fitness: scaling, trimming, mean."""
        if predictions.shape != y.shape:
            predictions = np.broadcast_to(predictions, y.shape).astype(float)
        if not np.all(np.isfinite(predictions)):
            return float("inf")
        n = y.shape[0]
        n_trim = int(np.ceil(n * self.TRIM_FRACTION)) if n >= 10 else 0
        keep = n - n_trim

        if not self.config.linear_scaling:
            errors = np.abs(predictions - y)
            if not np.all(np.isfinite(errors)):
                return float("inf")
            if n_trim:
                errors = np.sort(errors)[:keep]
            return float(np.mean(errors))

        errors = self._linear_scaled_errors(predictions, y, None)
        if errors is None:
            return float("inf")
        if n_trim:
            inliers = np.argsort(errors)[:keep]
            refit = self._linear_scaled_errors(predictions, y, inliers)
            if refit is not None:
                errors = refit
            errors = np.sort(errors)[:keep]
        return float(np.mean(errors))

    @staticmethod
    def _linear_scaled_errors(
        predictions: np.ndarray, y: np.ndarray, subset: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """|a*f+b - y| with (a, b) fit on ``subset`` (or all) samples."""
        f_fit = predictions if subset is None else predictions[subset]
        y_fit = y if subset is None else y[subset]
        f_mean = f_fit.mean()
        y_mean = y_fit.mean()
        centred = f_fit - f_mean
        variance = float(np.dot(centred, centred))
        if variance < 1e-12:
            errors = np.abs(y_mean - y)  # constant tree
        else:
            a = float(np.dot(centred, y_fit - y_mean)) / variance
            b = y_mean - a * f_mean
            errors = np.abs(a * predictions + b - y)
        if not np.all(np.isfinite(errors)):
            return None
        return errors

    @staticmethod
    def _final_mae(tree: Node, columns: List[np.ndarray], y: np.ndarray) -> float:
        """Plain (unscaled) MAE — used for the final, polished tree."""
        try:
            predictions = tree.evaluate(columns)
        except (ValueError, OverflowError):
            return float("inf")
        if predictions.shape != y.shape:
            predictions = np.broadcast_to(predictions, y.shape).astype(float)
        errors = np.abs(predictions - y)
        if not np.all(np.isfinite(errors)):
            return float("inf")
        return float(np.mean(errors))

    def _penalised(self, mae: float, size: int) -> float:
        if not np.isfinite(mae):
            return float("inf")
        return mae + self.config.parsimony * size

    # ------------------------------------------------------- compiled fitness

    def _program_mae(
        self,
        program: CompiledProgram,
        columns: List[np.ndarray],
        y: np.ndarray,
        tag: str = "full",
    ) -> float:
        """Fitness of one compiled tree, through the cache when enabled.

        ``tag`` separates cache entries computed on different views of the
        dataset (full vs subsample) — one cache instance, disjoint keys.
        """
        cache = self._cache
        if cache is not None:
            key = (tag, program.key)
            cached = cache.get(key)
            if cached is not None:
                return cached
        try:
            predictions = program.execute(columns, self._const_cache)
        except (ValueError, OverflowError):
            mae = float("inf")
        else:
            mae = self._mae_from_predictions(predictions, y)
        if cache is not None:
            cache.put(key, mae)
        return mae

    def _fitness(self, tree: Node, columns: List[np.ndarray], y: np.ndarray) -> float:
        """Single-tree fitness through the configured evaluation engine."""
        if not self.config.compiled:
            return self._scaled_mae(tree, columns, y)
        return self._program_mae(compile_tree(tree), columns, y)

    def _evaluate_population(
        self,
        population: List[Node],
        columns: List[np.ndarray],
        y: np.ndarray,
    ) -> Tuple[List[float], List[int]]:
        """In-process driver for :meth:`_evaluate_population_steps`."""
        return drive(self._evaluate_population_steps(population, columns, y))

    def _evaluate_population_steps(
        self,
        population: List[Node],
        columns: List[np.ndarray],
        y: np.ndarray,
    ):
        """Fitness and size for every tree in one batch.

        The compiled path flattens each tree once (yielding its size for
        the parsimony penalty as a by-product), consults the fitness
        cache, executes the cache misses, and runs the fitness *math*
        (linear scaling, trim, refit) batched over the whole population as
        matrix operations — the same scalar operations the per-tree code
        applies, so the floats are bit-identical (reductions whose result
        depends on accumulation order, the BLAS dot products, stay
        per-row).  When ``subsample_size`` is on, candidates are scored on
        an evenly spaced subsample first and only the top
        ``subsample_top`` fraction is re-scored on the full dataset.

        A generator: the actual matrix math happens wherever the yielded
        :class:`MaesRequest`\\ s are answered — in-process via
        :func:`repro.core.gp.batch.drive`, or merged across ESVs by a
        :class:`~repro.core.gp.batch.BatchEvaluator`.
        """
        config = self.config
        if not config.compiled:
            maes = [self._scaled_mae(tree, columns, y) for tree in population]
            return maes, [tree.size() for tree in population]
        programs = [compile_tree(tree) for tree in population]
        sizes = [program.size for program in programs]
        n = y.shape[0]
        if config.subsample_size and 0 < config.subsample_size < n:
            indices = np.linspace(0, n - 1, config.subsample_size).astype(int)
            sub_columns = [column[indices] for column in columns]
            sub_y = y[indices]
            sub_maes = yield from self._batched_fitness_steps(
                programs, sub_columns, sub_y, "sub"
            )
            promoted = int(np.ceil(len(programs) * config.subsample_top))
            order = np.argsort(sub_maes, kind="stable")[: max(1, promoted)]
            chosen = [programs[index] for index in order]
            full_maes = yield from self._batched_fitness_steps(
                chosen, columns, y, "full"
            )
            maes = list(sub_maes)
            for index, mae in zip(order, full_maes):
                maes[index] = mae
            return maes, sizes
        maes = yield from self._batched_fitness_steps(programs, columns, y, "full")
        return maes, sizes

    def _batched_fitness(
        self,
        programs: List[CompiledProgram],
        columns: List[np.ndarray],
        y: np.ndarray,
        tag: str,
    ) -> List[float]:
        """In-process driver for :meth:`_batched_fitness_steps`."""
        return drive(self._batched_fitness_steps(programs, columns, y, tag))

    def _batched_fitness_steps(
        self,
        programs: List[CompiledProgram],
        columns: List[np.ndarray],
        y: np.ndarray,
        tag: str,
    ):
        """Cache-aware batched fitness for a list of compiled programs.

        Generator: program execution (the interpreter loop) runs inline,
        the fitness math is requested through one yielded
        :class:`MaesRequest` per call.
        """
        cache = self._cache
        maes: List[Optional[float]] = [None] * len(programs)
        pending: List[Tuple[Tuple, List[int]]] = []
        if cache is not None:
            slots: dict = {}
            for index, program in enumerate(programs):
                key = (tag, program.key)
                cached = cache.get(key)
                if cached is not None:
                    maes[index] = cached
                elif key in slots:
                    # Duplicate structure within the batch: evaluate once.
                    pending[slots[key]][1].append(index)
                    cache.hits += 1
                    cache.misses -= 1
                else:
                    slots[key] = len(pending)
                    pending.append((key, [index]))
        else:
            pending = [((tag, index), [index]) for index in range(len(programs))]

        if pending:
            rows: List[Optional[np.ndarray]] = []
            const_cache = self._const_cache
            with np.errstate(all="ignore"):
                for key, indices in pending:
                    program = programs[indices[0]]
                    try:
                        row = program.execute_unchecked(columns, const_cache)
                    except (ValueError, OverflowError):
                        row = None
                    else:
                        if row.shape != y.shape:
                            row = np.broadcast_to(row, y.shape).astype(float)
                    rows.append(row)
            results = [float("inf")] * len(pending)
            live = [slot for slot, row in enumerate(rows) if row is not None]
            if live:
                matrix = np.empty((len(live), y.shape[0]))
                for offset, slot in enumerate(live):
                    matrix[offset] = rows[slot]
                batched = yield MaesRequest(
                    matrix, y, self.config.linear_scaling, self.TRIM_FRACTION
                )
                for offset, slot in enumerate(live):
                    results[slot] = float(batched[offset])
            for (key, indices), mae in zip(pending, results):
                for index in indices:
                    maes[index] = mae
                if cache is not None:
                    cache.put(key, mae)
        return maes  # type: ignore[return-value]

    def _batched_maes(self, F: np.ndarray, y: np.ndarray) -> np.ndarray:
        """The per-tree fitness math, vectorised over population rows.

        Thin delegate to :func:`repro.core.gp.batch.batched_maes` (where
        the math lives so merged cross-ESV passes can reuse it), bound to
        this engine's scaling mode and trim fraction.
        """
        return batched_maes(F, y, self.config.linear_scaling, self.TRIM_FRACTION)

    _batched_linear_fit = staticmethod(batched_linear_fit)

    # -------------------------------------------------------------- operators

    def _tournament(self, rng, population, scores) -> Node:
        """Best of ``tournament_size`` uniformly sampled individuals.

        Open-codes :meth:`random.Random.sample` over ``range(n)`` — the
        same ``_randbelow`` draw sequence, including the pool-vs-set branch
        at the same ``setsize`` threshold — minus its generic-sequence
        overhead (isinstance dispatch, result-list build).  Tournaments run
        tens of thousands of times per fit, and the rng stream must stay
        bit-identical for seeded results to be reproducible.
        """
        n = len(population)
        k = min(self.config.tournament_size, n)
        randbelow = rng._randbelow
        setsize = 21
        if k > 5:
            setsize += 4 ** math.ceil(math.log(k * 3, 4))
        best = -1
        best_score = math.inf
        if n <= setsize:
            pool = list(range(n))
            for i in range(k):
                j = randbelow(n - i)
                index = pool[j]
                pool[j] = pool[n - i - 1]
                score = scores[index]
                if best < 0 or score < best_score:
                    best, best_score = index, score
        else:
            selected: set = set()
            add = selected.add
            for __ in range(k):
                j = randbelow(n)
                while j in selected:
                    j = randbelow(n)
                add(j)
                score = scores[j]
                if best < 0 or score < best_score:
                    best, best_score = j, score
        return population[best]

    def _donor_nodes(self, tree: Node) -> List[Node]:
        """Node list of a *population member*, cached for the generation.

        Selection pressure makes tournaments hand back the same few parents
        over and over; their node lists are immutable for the generation
        (operators only ever mutate copies), so one walk per parent per
        generation suffices.  Keyed by ``id`` — safe because the population
        list keeps every member alive for exactly the cache's lifetime.
        """
        cache = self._parent_nodes
        nodes = cache.get(id(tree))
        if nodes is None:
            nodes = cache[id(tree)] = tree.nodes()
        return nodes

    def _crossover(self, rng, a: Node, b: Node) -> Node:
        # Only the selected graft is copied out of the donor — copying all
        # of ``b`` first would allocate the whole tree to keep one subtree.
        # rng consumption (two choices over same-length node lists) is
        # unchanged, so evolution is bit-for-bit the same.
        child, target_nodes = a.copy_with_nodes()
        donor_nodes = self._donor_nodes(b)
        target = rng.choice(target_nodes)
        graft = rng.choice(donor_nodes).copy()
        if target is child:
            return graft
        child.replace_child(target, graft)
        return child

    def _subtree_mutation(self, rng, tree: Node, n_variables: int) -> Node:
        replacement = random_tree(
            rng, n_variables, self.config.function_names,
            max_depth=self.config.init_depth, const_range=self.config.const_range,
        )
        mutant, nodes = tree.copy_with_nodes()
        target = rng.choice(nodes)
        if target is mutant:
            return replacement
        mutant.replace_child(target, replacement)
        return mutant

    def _point_mutation(self, rng, tree: Node, n_variables: int) -> Node:
        mutant, nodes = tree.copy_with_nodes()
        terminals = [n for n in nodes if n.is_terminal]
        target = rng.choice(terminals)
        if rng.random() < 0.5:
            target.var_index = rng.randrange(n_variables)
            target.constant = None
        else:
            target.var_index = None
            target.constant = round(rng.uniform(-self.config.const_range, self.config.const_range), 3)
        return mutant

    def _constant_mutation(self, rng, tree: Node) -> Node:
        mutant, nodes = tree.copy_with_nodes()
        constants = [n for n in nodes if n.constant is not None]
        if constants:
            target = rng.choice(constants)
            target.constant *= rng.uniform(0.5, 1.5)
            target.constant += rng.uniform(-0.5, 0.5)
        return mutant

    # -------------------------------------------------------------- evolution

    def fit(self, x_rows: Sequence[Sequence[float]], y_values: Sequence[float]) -> GpResult:
        """Evolve a formula for the dataset ``(x_rows, y_values)``.

        In-process driver for :meth:`fit_steps`; results are bit-identical
        to a :class:`~repro.core.gp.batch.BatchEvaluator` driving the same
        generator interleaved with other ESVs.
        """
        return drive(self.fit_steps(x_rows, y_values))

    def fit_steps(self, x_rows: Sequence[Sequence[float]], y_values: Sequence[float]):
        """Generator form of :meth:`fit`: yields every fitness-math request.

        The evolution logic — rng stream, selection, operators, elitism,
        early exit — runs inside the generator and is untouched by *where*
        the yielded :class:`MaesRequest`\\ s are answered, which is what
        keeps reports byte-identical across the serial and cross-ESV
        batched execution modes.
        """
        if not x_rows:
            raise ValueError("empty dataset")
        config = self.config
        rng = random.Random(config.seed)
        x_matrix = np.asarray(x_rows, dtype=float)
        if x_matrix.ndim == 1:
            x_matrix = x_matrix[:, None]
        y = np.asarray(y_values, dtype=float)
        n_variables = x_matrix.shape[1]
        columns = [np.ascontiguousarray(x_matrix[:, i]) for i in range(n_variables)]

        # Per-dataset evaluation state: the fitness cache (shared across
        # engines when injected) and the materialised-constant cache.
        if config.fitness_cache:
            # `is not None`, not truthiness: an injected cache that is
            # still empty (len 0) must not be swapped for a private one.
            self._cache = (
                self._shared_cache if self._shared_cache is not None else FitnessCache()
            )
            self._const_cache = self._cache.const_arrays
        else:
            self._cache = None
            self._const_cache = {}

        population: List[Node] = []
        for index in range(config.population_size):
            grow = index % 2 == 0
            depth = 2 + index % max(1, config.init_depth - 1)
            population.append(
                random_tree(rng, n_variables, config.function_names, depth,
                            config.const_range, grow=grow)
            )
        # Seed a few obviously useful shapes so trivial formulas converge
        # instantly (GP implementations seed linear terms the same way).
        for i in range(n_variables):
            population.append(Node.var(i))
            population.append(Node.call("mul", Node.var(i), Node.const(1.0)))
        linear_seed = self._linear_seed(columns, y)
        if linear_seed is not None:
            population.append(linear_seed)
        if n_variables == 2:
            population.append(Node.call("mul", Node.var(0), Node.var(1)))
            # Shifted products c*Xi*(Xj - k) are a common manufacturer shape
            # (KWP types 0x05/0x14/0x22); seed the motif, evolution tunes k.
            # Raw bytes centred on 128 (the signed-byte convention) arrive
            # here scaled by 0.1/0.01, hence the 1.28/12.8 variants.
            for i, j in ((0, 1), (1, 0)):
                for shift in (1.0, 1.28, 12.8):
                    population.append(
                        Node.call(
                            "mul",
                            Node.var(i),
                            Node.call("sub", Node.var(j), Node.const(shift)),
                        )
                    )

        maes, sizes = yield from self._evaluate_population_steps(population, columns, y)
        scores = [self._penalised(m, s) for m, s in zip(maes, sizes)]
        best_index = int(np.argmin(scores))
        best_tree, best_mae = population[best_index].copy(), maes[best_index]
        generations_run = 0

        depth_limit = config.max_depth + 2
        for generation in range(config.generations):
            generations_run = generation + 1
            self._parent_nodes = {}  # per-generation donor node-list cache
            next_population: List[Node] = [best_tree.copy()]  # elitism
            while len(next_population) < config.population_size:
                roll = rng.random()
                parent = self._tournament(rng, population, scores)
                if roll < config.crossover_prob:
                    other = self._tournament(rng, population, scores)
                    child = self._crossover(rng, parent, other)
                elif roll < config.crossover_prob + config.subtree_mutation_prob:
                    child = self._subtree_mutation(rng, parent, n_variables)
                elif roll < (config.crossover_prob + config.subtree_mutation_prob
                             + config.point_mutation_prob):
                    child = self._point_mutation(rng, parent, n_variables)
                elif roll < (config.crossover_prob + config.subtree_mutation_prob
                             + config.point_mutation_prob + config.constant_mutation_prob):
                    child = self._constant_mutation(rng, parent)
                else:
                    child = parent.copy()
                # depth <= size always, so the cheaper size walk screens
                # out almost every child before the depth walk runs.
                if child.size() > depth_limit and child.depth() > depth_limit:
                    child = random_tree(rng, n_variables, config.function_names,
                                        config.init_depth, config.const_range)
                next_population.append(child)
            population = next_population
            maes, sizes = yield from self._evaluate_population_steps(
                population, columns, y
            )
            scores = [self._penalised(m, s) for m, s in zip(maes, sizes)]
            best_index = int(np.argmin(scores))
            if maes[best_index] < best_mae:
                best_tree, best_mae = population[best_index].copy(), maes[best_index]
            if best_mae <= config.fitness_threshold:
                break  # stopping criterion (ii): fitness reached the threshold

        best_tree = yield from self._refine_constants_steps(best_tree, columns, y)
        if config.linear_scaling:
            best_tree = polish_constants(best_tree, columns, y)
        best_mae = self._final_mae(best_tree, columns, y)
        return GpResult(
            tree=best_tree,
            fitness=best_mae,
            generations_run=generations_run,
            expression=best_tree.to_infix(),
            n_variables=n_variables,
            cache_stats=self._cache.stats() if self._cache is not None else None,
        )


    @staticmethod
    def _linear_seed(columns: List[np.ndarray], y: np.ndarray) -> Optional[Node]:
        """The least-squares multilinear solution as a seed tree.

        Hybrid seeding: when the true formula *is* linear the seed is exact
        from generation zero (evolution cannot lose it thanks to elitism);
        when it is not, the seed is just one more individual.
        """
        if len(columns) < 2:
            return None  # single-var linear shapes are covered by var seeds
        design = np.stack(list(columns) + [np.ones_like(y)], axis=1)
        try:
            coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(coefficients)):
            return None
        tree: Optional[Node] = None
        for index in range(len(columns)):
            term = Node.call("mul", Node.const(round(float(coefficients[index]), 6)), Node.var(index))
            tree = term if tree is None else Node.call("add", tree, term)
        return Node.call("add", tree, Node.const(round(float(coefficients[-1]), 6)))

    def _refine_constants(
        self, tree: Node, columns: List[np.ndarray], y: np.ndarray
    ) -> Node:
        """In-process driver for :meth:`_refine_constants_steps`."""
        return drive(self._refine_constants_steps(tree, columns, y))

    def _refine_constants_steps(
        self, tree: Node, columns: List[np.ndarray], y: np.ndarray
    ):
        """Greedy hill-climb on each constant of the winning tree.

        Evolution finds the right *shape* quickly but fine constants (e.g.
        the 1.28 centre of a signed-byte shift) drift slowly through random
        mutation; a few rounds of coordinate descent finish the job
        deterministically.
        """
        best = tree.copy()
        best_score = self._fitness(best, columns, y)
        if not np.isfinite(best_score):
            return tree
        compiled = self.config.compiled
        for __ in range(3):
            improved = False
            constants = [n for n in best.nodes() if n.constant is not None]
            for node in constants:
                original = node.constant
                candidates = [
                    original * 0.8, original * 0.9, original * 1.1, original * 1.25,
                    original - 0.1, original + 0.1, original - 0.02, original + 0.02,
                ]
                # The candidate list is fixed up front, so the greedy
                # accept below only orders comparisons — all eight scores
                # can be computed in one batched call on the compiled path.
                if compiled:
                    programs = []
                    for candidate in candidates:
                        node.constant = candidate
                        programs.append(compile_tree(best))
                    scores = yield from self._batched_fitness_steps(
                        programs, columns, y, "full"
                    )
                else:
                    scores = []
                    for candidate in candidates:
                        node.constant = candidate
                        scores.append(self._scaled_mae(best, columns, y))
                for candidate, score in zip(candidates, scores):
                    if score < best_score - 1e-12:
                        best_score = score
                        original = candidate
                        improved = True
                node.constant = original
            if not improved:
                break
        return best


def polish_constants(tree: Node, columns: List[np.ndarray], y: np.ndarray) -> Node:
    """Refine ``a * f(X) + b`` around the evolved tree by least squares.

    If wrapping the tree in a scale-and-shift reduces the error, return the
    wrapped (and constant-folded) tree; otherwise return the original.
    """
    try:
        f_values = tree.evaluate(columns)
    except (ValueError, OverflowError):
        return tree
    if f_values.shape != y.shape:
        f_values = np.broadcast_to(f_values, y.shape).astype(float)
    if not np.all(np.isfinite(f_values)):
        return tree

    def fit(subset: Optional[np.ndarray]):
        f_fit = f_values if subset is None else f_values[subset]
        y_fit = y if subset is None else y[subset]
        design = np.stack([f_fit, np.ones_like(f_fit)], axis=1)
        try:
            (a, b), *_ = np.linalg.lstsq(design, y_fit, rcond=None)
        except np.linalg.LinAlgError:
            return None
        if not (np.isfinite(a) and np.isfinite(b)):
            return None
        return float(a), float(b)

    params = fit(None)
    if params is None:
        return tree
    a, b = params
    # Refit on the inlier 95% so surviving OCR outliers cannot skew the
    # final constants (same trimming the fitness uses).
    n = y.shape[0]
    n_trim = int(np.ceil(n * GeneticProgrammer.TRIM_FRACTION)) if n >= 10 else 0
    if n_trim:
        residuals = np.abs(a * f_values + b - y)
        inliers = np.argsort(residuals)[: n - n_trim]
        refit = fit(inliers)
        if refit is not None:
            a, b = refit
    trimmed = np.sort(np.abs(f_values - y))[: n - n_trim]
    polished = np.sort(np.abs(a * f_values + b - y))[: n - n_trim]
    if float(np.mean(polished)) >= float(np.mean(trimmed)) - 1e-12:
        return tree
    wrapped = Node.call(
        "add", Node.call("mul", Node.const(float(a)), tree.copy()), Node.const(float(b))
    )
    return wrapped
