"""Exact, JSON-able serialisation of expression trees.

The process-backend workers and the on-disk formula memo both need to move
evolved trees across a process or run boundary.  Pickle alone is not
enough: the memo stores entries as JSON (human-inspectable, atomic-rename
friendly), and either way the round trip must be *exact* — the
reconstructed tree has to evaluate bit-for-bit like the original, because
report byte-identity across backends and across warm/cold memo runs is an
asserted invariant.

Trees are encoded as their postfix token sequence (the same order
:func:`repro.core.gp.compile.compile_tree` uses), with three token kinds::

    ["v", index]   variable reference X<index>
    ["c", value]   floating-point constant
    ["f", name]    function application, arity from FUNCTION_SET

Constants survive JSON exactly (Python serialises floats via repr, which
round-trips every finite float64; ``inf``/``nan`` ride JSON's
``Infinity``/``NaN`` literals).  Functions are encoded by name and resolved
against :data:`~repro.core.gp.functions.FUNCTION_SET` on decode, so the
rebuilt tree points at the very same interned primitives.
"""

from __future__ import annotations

from typing import List, Sequence

from .functions import FUNCTION_SET
from .tree import Node


def tree_to_tokens(tree: Node) -> List[list]:
    """Flatten ``tree`` into its postfix token list."""
    # Right-first pre-order; reversed yields postfix (as in compile_tree).
    walk: List[Node] = []
    stack: List[Node] = [tree]
    while stack:
        node = stack.pop()
        walk.append(node)
        if node.children:
            stack.extend(node.children)
    tokens: List[list] = []
    for node in reversed(walk):
        if node.var_index is not None:
            tokens.append(["v", node.var_index])
        elif node.constant is not None:
            tokens.append(["c", node.constant])
        else:
            tokens.append(["f", node.function.name])
    return tokens


def tree_from_tokens(tokens: Sequence[Sequence]) -> Node:
    """Rebuild the tree a :func:`tree_to_tokens` call flattened.

    Raises :class:`ValueError` on malformed input (unknown token kind or
    function name, wrong operand count) so corrupt memo entries surface as
    a clear error the caller can treat as a cache miss.
    """
    stack: List[Node] = []
    for token in tokens:
        try:
            kind, payload = token
        except (TypeError, ValueError):
            raise ValueError(f"malformed tree token: {token!r}") from None
        if kind == "v":
            stack.append(Node.var(int(payload)))
        elif kind == "c":
            stack.append(Node.const(float(payload)))
        elif kind == "f":
            function = FUNCTION_SET.get(payload)
            if function is None:
                raise ValueError(f"unknown GP function in tree tokens: {payload!r}")
            if len(stack) < function.arity:
                raise ValueError(
                    f"tree tokens underflow: {payload!r} needs {function.arity} operands"
                )
            children = stack[-function.arity:]
            del stack[-function.arity:]
            stack.append(Node(function=function, children=children))
        else:
            raise ValueError(f"unknown tree token kind: {kind!r}")
    if len(stack) != 1:
        raise ValueError(f"tree tokens decode to {len(stack)} roots, expected 1")
    return stack[0]
