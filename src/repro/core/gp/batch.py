"""Cross-ESV batched fitness evaluation.

The engine's evolution loop is written as a *generator*
(:meth:`~repro.core.gp.engine.GeneticProgrammer.fit_steps`): wherever the
old code called the batched fitness math directly, the generator instead
yields a :class:`MaesRequest` — the (P×N) prediction matrix of the
population plus the target vector — and resumes with the per-row MAE
array sent back.  That inversion buys two execution modes for free:

* :func:`drive` runs one generator to completion in-process, evaluating
  every request with exactly the math the old inline call applied — the
  serial path is the same floats in the same order;
* :class:`BatchEvaluator` advances *many* generators (one per in-flight
  ESV) in lock step, collects their pending requests each round, groups
  the ones with the same sample count, and answers a whole group with a
  single merged matrix pass — one (ΣP×N) evaluation per generation
  instead of one (P×N) evaluation per ESV.

The merged pass is bit-identical to the per-ESV passes it replaces:
:func:`batched_maes` applies the same element-wise operations, its
row-wise reductions (``mean(axis=1)``, per-row sorts) process each
contiguous row exactly as the one-request call processes its rows, and
the least-squares dot products already go through one 1-D BLAS call per
row whether the target is the shared vector or a per-row matrix.  The
equivalence suite asserts this on adversarial inputs (non-finite rows,
constant trees, trim/refit branches).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ...observability.trace import NULL_TRACER, activated

#: Fraction of worst residuals excluded by the trimmed fitness
#: (:class:`~repro.core.gp.engine.GeneticProgrammer` re-exports this as
#: ``TRIM_FRACTION`` for back-compat).
TRIM_FRACTION = 0.08


class MaesRequest:
    """One pending fitness evaluation: ``matrix`` rows against ``y``.

    ``matrix`` is the (P, N) float array of per-program predictions,
    ``y`` the shared (N,) target.  ``linear_scaling``/``trim_fraction``
    travel with the request because merged passes may only combine
    requests that agree on them (they change the math, not just the
    shape).
    """

    __slots__ = ("matrix", "y", "linear_scaling", "trim_fraction")

    def __init__(
        self,
        matrix: np.ndarray,
        y: np.ndarray,
        linear_scaling: bool,
        trim_fraction: float = TRIM_FRACTION,
    ) -> None:
        self.matrix = matrix
        self.y = y
        self.linear_scaling = linear_scaling
        self.trim_fraction = trim_fraction

    @property
    def group_key(self) -> Tuple[int, bool, float]:
        """Requests sharing this key may be answered by one merged pass."""
        return (int(self.y.shape[-1]), self.linear_scaling, self.trim_fraction)

    def evaluate(self) -> np.ndarray:
        """Answer this request alone — the serial path's exact math."""
        return batched_maes(self.matrix, self.y, self.linear_scaling, self.trim_fraction)


def drive(gen):
    """Run an evaluation-step generator to completion in-process.

    Each yielded :class:`MaesRequest` is answered immediately by
    :meth:`MaesRequest.evaluate` — the identical call chain the pre-
    generator code inlined — so driving a generator this way produces
    bit-identical results to the old non-generator methods.
    """
    try:
        request = next(gen)
        while True:
            request = gen.send(request.evaluate())
    except StopIteration as stop:
        return stop.value


class BatchEvaluator:
    """Advance many evaluation-step generators in lock step.

    Each round collects the one pending :class:`MaesRequest` per live
    generator, groups requests by :attr:`MaesRequest.group_key`, and
    answers every multi-member group with a single merged
    :func:`batched_maes` pass over the vertically stacked matrices (the
    target becomes one row per stacked row).  Singleton groups take the
    plain per-request path, so a batch of one is literally the serial
    code.

    Generators are advanced under the disabled tracer: span stacks are
    per-thread and interleaved coroutines would otherwise unwind each
    other's nesting.  Callers that want telemetry wrap the whole batch in
    one span instead.
    """

    def run(self, generators: Iterable) -> List:
        generators = list(generators)
        results: List = [None] * len(generators)
        pending = {}

        def _advance(index: int, value) -> None:
            try:
                pending[index] = generators[index].send(value)
            except StopIteration as stop:
                results[index] = stop.value

        with activated(NULL_TRACER):
            for index, gen in enumerate(generators):
                try:
                    pending[index] = next(gen)
                except StopIteration as stop:
                    results[index] = stop.value
            while pending:
                current, pending = pending, {}
                groups: dict = {}
                for index, request in current.items():
                    groups.setdefault(request.group_key, []).append((index, request))
                answers = {}
                for members in groups.values():
                    if len(members) == 1:
                        index, request = members[0]
                        answers[index] = request.evaluate()
                        continue
                    for index, rows in zip(
                        (i for i, __ in members),
                        self._merged_pass([r for __, r in members]),
                    ):
                        answers[index] = rows
                for index, value in answers.items():
                    _advance(index, value)
        return results

    @staticmethod
    def _merged_pass(requests: List[MaesRequest]) -> List[np.ndarray]:
        """One stacked evaluation answering every request in the group."""
        n = requests[0].y.shape[-1]
        total = sum(r.matrix.shape[0] for r in requests)
        F = np.empty((total, n))
        Y = np.empty((total, n))
        offset = 0
        for request in requests:
            rows = request.matrix.shape[0]
            F[offset : offset + rows] = request.matrix
            Y[offset : offset + rows] = request.y  # broadcast across rows
            offset += rows
        merged = batched_maes(
            F, Y, requests[0].linear_scaling, requests[0].trim_fraction
        )
        out: List[np.ndarray] = []
        offset = 0
        for request in requests:
            rows = request.matrix.shape[0]
            out.append(merged[offset : offset + rows])
            offset += rows
        return out


# ------------------------------------------------------------ fitness math


def batched_maes(
    F: np.ndarray,
    y: np.ndarray,
    linear_scaling: bool,
    trim_fraction: float = TRIM_FRACTION,
) -> np.ndarray:
    """The per-tree fitness math, vectorised over population rows.

    Every arithmetic step applies the same scalar operation the per-tree
    ``_mae_from_predictions`` applies, in the same order; order-sensitive
    reductions (means, sorts) use numpy's per-row kernels, and the two
    least-squares dot products go through the same 1-D BLAS call per row
    — so each row's fitness is bit-equal to the per-tree result (asserted
    by the equivalence test suite).

    ``y`` is the shared (N,) target for a one-ESV pass, or a (P, N)
    per-row target matrix for a merged cross-ESV pass; each row's result
    is bit-equal either way (per-row reductions over contiguous rows run
    the same kernels as their 1-D counterparts).
    """
    n = F.shape[1]
    per_row = y.ndim == 2
    n_trim = int(np.ceil(n * trim_fraction)) if n >= 10 else 0
    keep = n - n_trim
    with np.errstate(all="ignore"):
        finite_rows = np.isfinite(F).all(axis=1)
        if not linear_scaling:
            E = np.abs(F - y)
            valid = finite_rows & np.isfinite(E).all(axis=1)
            if n_trim:
                E.sort(axis=1)
                maes = np.ascontiguousarray(E[:, :keep]).mean(axis=1)
            else:
                maes = E.mean(axis=1)
            maes[~valid] = np.inf
            return maes

        if per_row:
            y_mean = y.mean(axis=1)
            y_centred = y - y_mean[:, None]
        else:
            y_mean = y.mean()
            y_centred = y - y_mean
        a, b = batched_linear_fit(F, y_centred, y_mean, finite_rows)
        # In-place chain, same operation order as the per-tree
        # ``abs(a*f + b - y)`` expression.
        E1 = a[:, None] * F
        E1 += b[:, None]
        E1 -= y
        np.abs(E1, out=E1)
        valid = finite_rows & np.isfinite(E1).all(axis=1)
        if not n_trim:
            maes = E1.mean(axis=1)
            maes[~valid] = np.inf
            return maes

        inliers = np.argsort(E1, axis=1)[:, :keep]
        f_fit = np.take_along_axis(F, inliers, axis=1)
        y_fit = np.take_along_axis(y, inliers, axis=1) if per_row else y[inliers]
        y_mean2 = y_fit.mean(axis=1)
        y_centred2 = y_fit - y_mean2[:, None]
        a2, b2 = batched_linear_fit(f_fit, y_centred2, y_mean2, valid)
        E2 = a2[:, None] * F
        E2 += b2[:, None]
        E2 -= y
        np.abs(E2, out=E2)
        refit_ok = np.isfinite(E2).all(axis=1)
        E = np.where(refit_ok[:, None], E2, E1)
        E.sort(axis=1)
        maes = np.ascontiguousarray(E[:, :keep]).mean(axis=1)
        maes[~valid] = np.inf
        return maes


def batched_linear_fit(
    f_fit: np.ndarray,
    y_centred: np.ndarray,
    y_mean,
    rows_mask: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise ``a*f+b`` least squares, dot products via 1-D BLAS.

    ``y_centred`` is shared (1-D) for the one-ESV full-dataset fit and
    per-row (2-D) for the inlier refit and merged cross-ESV passes;
    ``y_mean`` likewise scalar or vector.  A row where the variance
    vanishes gets ``a=0, b=y_mean`` — exactly the constant-tree branch of
    the scalar path, since ``|0*f + y_mean - y|`` equals ``|y_mean - y|``.
    """
    f_mean = f_fit.mean(axis=1)
    centred = f_fit - f_mean[:, None]
    shared = y_centred.ndim == 1
    dot = np.dot
    nan = np.nan
    variance_rows: List[float] = []
    a_num_rows: List[float] = []
    append_var = variance_rows.append
    append_num = a_num_rows.append
    if shared:
        for row, ok in zip(centred, rows_mask.tolist()):
            if ok:
                append_var(dot(row, row))
                append_num(dot(row, y_centred))
            else:  # row already doomed to inf; skip the BLAS calls
                append_var(nan)
                append_num(nan)
    else:
        for row, y_row, ok in zip(centred, y_centred, rows_mask.tolist()):
            if ok:
                append_var(dot(row, row))
                append_num(dot(row, y_row))
            else:
                append_var(nan)
                append_num(nan)
    variance = np.array(variance_rows)
    a_num = np.array(a_num_rows)
    const = variance < 1e-12  # NaN compares False: stays on the a-path
    a = np.where(const, 0.0, a_num / np.where(const, 1.0, variance))
    b = y_mean - a * f_mean
    return a, b
