"""Step 2 of diagnostic-frames analysis: payload assembly (§3.2).

Long diagnostic messages span several CAN frames; this stage reassembles
raw payloads per CAN id stream:

* ISO 15765-2 — SF extracted directly; FF starts a buffer filled by CFs
  until the announced length is reached;
* VW TP 2.0 — no length field: concatenate until a last-packet opcode;
* BMW extended addressing — strip the leading ECU-address byte, then
  ISO-TP reassembly on the remainder (*"we ignore the first byte and put
  the remaining bytes together"*).

Output is a list of :class:`AssembledMessage` carrying the payload, the
CAN id it travelled on, and first/last frame timestamps — the time anchor
everything downstream uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..can import CanFrame
from ..transport.bmw import BmwReassembler
from ..transport.isotp import IsoTpReassembler, PciType
from ..transport.vwtp import VwTpReassembler
from .screening import (
    TRANSPORT_BMW,
    TRANSPORT_ISOTP,
    TRANSPORT_VWTP,
    detect_transport,
    screen,
)


@dataclass(frozen=True)
class AssembledMessage:
    """One reassembled diagnostic payload."""

    payload: bytes
    can_id: int
    t_first: float  # timestamp of the first frame of the message
    t_last: float  # timestamp of the frame completing the message
    n_frames: int
    ecu_address: Optional[int] = None  # BMW addressing only

    @property
    def service_id(self) -> int:
        return self.payload[0] if self.payload else -1


class _StreamState:
    """Per-CAN-id reassembly state."""

    def __init__(self, transport: str) -> None:
        if transport == TRANSPORT_VWTP:
            self.reassembler = VwTpReassembler(strict=False)
        elif transport == TRANSPORT_BMW:
            self.reassembler = BmwReassembler(strict=False)
        else:
            self.reassembler = IsoTpReassembler(strict=False)
        self.transport = transport
        self.t_first: Optional[float] = None
        self.n_frames = 0

    def feed(self, frame: CanFrame) -> Optional[AssembledMessage]:
        if self.t_first is None:
            self.t_first = frame.timestamp
        self.n_frames += 1
        payload = self.reassembler.feed(frame)
        if payload is None:
            return None
        address = None
        if self.transport == TRANSPORT_BMW:
            address = self.reassembler.last_address
        message = AssembledMessage(
            payload=payload,
            can_id=frame.can_id,
            t_first=self.t_first,
            t_last=frame.timestamp,
            n_frames=self.n_frames,
            ecu_address=address,
        )
        self.t_first = None
        self.n_frames = 0
        return message


def assemble(frames: Iterable[CanFrame], transport: str = "") -> List[AssembledMessage]:
    """Screen and reassemble a capture into diagnostic payloads.

    Frames are demultiplexed by CAN id (each id is one direction of one
    conversation) and fed to a per-id reassembler in timestamp order.
    """
    frames = list(frames)
    transport = transport or detect_transport(frames)
    screened = screen(frames, transport)
    streams: Dict[int, _StreamState] = {}
    messages: List[AssembledMessage] = []
    for frame in screened:
        state = streams.get(frame.can_id)
        if state is None:
            state = streams[frame.can_id] = _StreamState(transport)
        message = state.feed(frame)
        if message is not None:
            messages.append(message)
    messages.sort(key=lambda m: m.t_last)
    return messages


def multiframe_statistics(frames: Iterable[CanFrame], transport: str = "") -> Dict[str, int]:
    """Tab. 9's frame mix: single vs multi-frame vs control frames.

    For ISO-TP: ``single`` = SF, ``multi`` = FF + CF, ``control`` = FC.
    For VW TP 2.0: ``single`` is reported as the *last* packets (complete
    after this frame), ``multi`` the continuation packets — matching how
    the paper counts "needs to wait for the next frames" (75.2 %).
    """
    from ..transport.vwtp import VwTpFrameKind, classify_vwtp_frame, is_last_packet

    frames = list(frames)
    transport = transport or detect_transport(frames)
    stats = {"single": 0, "multi": 0, "control": 0, "total": 0}
    for frame in frames:
        stats["total"] += 1
        if transport == TRANSPORT_VWTP:
            kind = classify_vwtp_frame(frame)
            if kind != VwTpFrameKind.DATA:
                stats["control"] += 1
            elif is_last_packet(frame):
                stats["single"] += 1
            else:
                stats["multi"] += 1
            continue
        offset = 1 if transport == TRANSPORT_BMW else 0
        if len(frame.data) <= offset:
            stats["control"] += 1
            continue
        nibble = frame.data[offset] >> 4
        if nibble == PciType.SINGLE:
            stats["single"] += 1
        elif nibble in (PciType.FIRST, PciType.CONSECUTIVE):
            stats["multi"] += 1
        else:
            stats["control"] += 1
    return stats
