"""Step 2 of diagnostic-frames analysis: payload assembly (§3.2).

Long diagnostic messages span several CAN frames; this stage reassembles
raw payloads per CAN id stream:

* ISO 15765-2 — SF extracted directly; FF starts a buffer filled by CFs
  until the announced length is reached;
* VW TP 2.0 — no length field: concatenate until a last-packet opcode;
* BMW extended addressing — strip the leading ECU-address byte, then
  ISO-TP reassembly on the remainder (*"we ignore the first byte and put
  the remaining bytes together"*).

Output is a list of :class:`AssembledMessage` carrying the payload, the
CAN id it travelled on, and first/last frame timestamps — the time anchor
everything downstream uses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..can import CanFrame
from ..observability.trace import get_active
from ..transport.arrays import HAVE_NUMPY, FrameArrays, np
from ..transport.base import (
    EVENT_PAYLOAD,
    EVENT_RESYNC,
    DecoderStats,
    HardeningPolicy,
)
from ..transport.bmw import BmwReassembler
from ..transport.isotp import SF_MAX_PAYLOAD, IsoTpReassembler, PciType
from ..transport.vwtp import VwTpReassembler
from .screening import (
    TRANSPORT_BMW,
    TRANSPORT_ISOTP,
    TRANSPORT_VWTP,
    detect_transport,
    frame_passes_screen,
    screen,
    screen_mask,
)

#: Cap on the human-readable event details kept in diagnostics; counters
#: keep the full totals regardless.
MAX_DETAILS = 20

#: Chunks below this many frames take the per-frame event path outright —
#: the numpy set-up cost exceeds the win.
MIN_CHUNK_FRAMES = 8


@dataclass(frozen=True)
class AssembledMessage:
    """One reassembled diagnostic payload."""

    payload: bytes
    can_id: int
    t_first: float  # timestamp of the first frame of the message
    t_last: float  # timestamp of the frame completing the message
    n_frames: int
    ecu_address: Optional[int] = None  # BMW addressing only

    @property
    def service_id(self) -> int:
        return self.payload[0] if self.payload else -1


@dataclass
class DecodeDiagnostics:
    """Capture-quality accounting for one payload-assembly pass.

    ``stats`` aggregates every per-CAN-id decoder; ``streams`` keeps the
    per-id breakdown so a single sick conversation is attributable.
    ``details`` holds the first :data:`MAX_DETAILS` error/resync
    descriptions verbatim for reports.
    """

    transport: str = ""
    frames: int = 0  # frames fed to decoders (after screening)
    messages: int = 0  # payloads recovered
    stats: DecoderStats = field(default_factory=DecoderStats)
    streams: Dict[int, DecoderStats] = field(default_factory=dict)
    details: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the capture decoded without a single error or resync."""
        return self.stats.errors == 0 and self.stats.resyncs == 0

    def record_detail(self, can_id: int, kind: str, detail: str) -> None:
        if len(self.details) < MAX_DETAILS:
            self.details.append(f"{can_id:#05x} {kind}: {detail}")

    def to_dict(self) -> dict:
        return {
            "transport": self.transport,
            "frames": self.frames,
            "messages": self.messages,
            "stats": self.stats.to_dict(),
            "streams": {f"{cid:#x}": s.to_dict() for cid, s in sorted(self.streams.items())},
            "details": list(self.details),
        }


class _StreamState:
    """Per-CAN-id reassembly state."""

    def __init__(
        self, transport: str, hardening: Optional[HardeningPolicy] = None
    ) -> None:
        if transport == TRANSPORT_VWTP:
            self.reassembler = VwTpReassembler(strict=False, hardening=hardening)
        elif transport == TRANSPORT_BMW:
            self.reassembler = BmwReassembler(strict=False, hardening=hardening)
        else:
            self.reassembler = IsoTpReassembler(strict=False, hardening=hardening)
        self.transport = transport
        self.t_first: Optional[float] = None
        self.n_frames = 0

    def feed(
        self, frame: CanFrame, diagnostics: Optional[DecodeDiagnostics] = None
    ) -> List[AssembledMessage]:
        if self.t_first is None:
            self.t_first = frame.timestamp
        self.n_frames += 1
        messages: List[AssembledMessage] = []
        for event in self.reassembler.feed(frame):
            if event.kind == EVENT_PAYLOAD:
                address = None
                if self.transport == TRANSPORT_BMW:
                    address = self.reassembler.last_address
                messages.append(
                    AssembledMessage(
                        payload=event.payload,
                        can_id=frame.can_id,
                        t_first=self.t_first,
                        t_last=frame.timestamp,
                        n_frames=self.n_frames,
                        ecu_address=address,
                    )
                )
                self.t_first = None
                self.n_frames = 0
            else:
                if event.kind == EVENT_RESYNC:
                    # The buffered message was abandoned; the current frame
                    # starts the next one's timing window.
                    self.t_first = frame.timestamp
                    self.n_frames = 1
                if diagnostics is not None:
                    diagnostics.record_detail(frame.can_id, event.kind, event.detail)
        return messages


class StreamAssembler:
    """Incremental payload assembly: one frame in, completed payloads out.

    The streaming core of :func:`assemble_with_diagnostics` — the batch
    path builds one of these and replays the capture through it, and the
    diagnostic service (:mod:`repro.service`) feeds it live frames as they
    arrive off the wire.  Frames failing the per-frame screen are dropped
    exactly as batch screening would drop them, each surviving frame is
    routed to its CAN id's reassembler, and :meth:`finish` produces the
    same ``(messages, diagnostics)`` pair as a batch pass over the same
    frame sequence — the invariant the service's byte-identical-report
    guarantee rests on.

    A :class:`~repro.transport.base.HardeningPolicy` flows down to every
    per-id decoder and additionally enforces the *global* byte budget
    across streams: when the total buffered bytes exceed it, the least
    recently active non-idle stream sheds its partial messages.  Hardened
    assembly also classifies screened-out flow-control frames aimed at a
    stream mid-reassembly as ``fc_violations`` — on a clean capture FC
    only travels on the reverse direction's id, whose stream is idle, so
    clean output stays byte-identical.
    """

    def __init__(
        self, transport: str, hardening: Optional[HardeningPolicy] = None
    ) -> None:
        self.transport = transport
        self.hardening = hardening
        self.diagnostics = DecodeDiagnostics(transport=transport)
        self._streams: Dict[int, _StreamState] = {}
        self._messages: List[AssembledMessage] = []
        self._activity: Dict[int, int] = {}
        self._tick = 0
        self._finished = False

    @property
    def messages(self) -> List[AssembledMessage]:
        """Every payload assembled so far, in completion order."""
        return self._messages

    def anomaly_counts(self) -> Dict[str, int]:
        """Current adversarial-shape counters summed across streams."""
        if self._finished:
            return self.diagnostics.stats.anomaly_counts()
        totals = DecoderStats()
        for state in self._streams.values():
            totals.merge(state.reassembler.stats)
        return totals.anomaly_counts()

    def _classify_screened_out(self, frame: CanFrame) -> None:
        """Hardened detection for frames the screen drops.

        A flow-control frame landing on a CAN id that is mid-reassembly is
        the offline fingerprint of live FC abuse (FC belongs on the
        reverse direction's id, which never buffers data).
        """
        offset = 1 if self.transport == TRANSPORT_BMW else 0
        if self.transport == TRANSPORT_VWTP or len(frame.data) <= offset:
            return
        if frame.data[offset] >> 4 != PciType.FLOW_CONTROL:
            return
        state = self._streams.get(frame.can_id)
        if state is not None and not state.reassembler.idle:
            state.reassembler.stats.fc_violations += 1

    def _enforce_global_budget(self) -> None:
        policy = self.hardening
        total = sum(
            state.reassembler.buffered_bytes for state in self._streams.values()
        )
        while total > policy.global_budget:
            candidates = [
                can_id
                for can_id, state in self._streams.items()
                if not state.reassembler.idle
            ]
            if not candidates:
                break
            victim = min(candidates, key=lambda cid: self._activity.get(cid, 0))
            state = self._streams[victim]
            freed = state.reassembler.evict_partial()
            state.t_first = None
            state.n_frames = 0
            self.diagnostics.record_detail(
                victim, EVENT_RESYNC, "stream evicted (global byte budget)"
            )
            if not freed:
                break
            total -= freed

    def feed(self, frame: CanFrame) -> List[AssembledMessage]:
        """Screen and decode one frame; return newly completed payloads."""
        if not frame_passes_screen(frame, self.transport):
            if self.hardening is not None:
                self._classify_screened_out(frame)
            return []
        self.diagnostics.frames += 1
        state = self._streams.get(frame.can_id)
        if state is None:
            state = self._streams[frame.can_id] = _StreamState(
                self.transport, self.hardening
            )
        completed = state.feed(frame, self.diagnostics)
        self._messages.extend(completed)
        if self.hardening is not None:
            self._tick += 1
            self._activity[frame.can_id] = self._tick
            self._enforce_global_budget()
        return completed

    def _stream_idle(self, can_id: int) -> bool:
        """True when ``can_id`` holds no partial message or timing window
        at the current chunk boundary (or has no state yet at all)."""
        state = self._streams.get(can_id)
        return state is None or (
            state.t_first is None
            and state.n_frames == 0
            and state.reassembler.idle
        )

    def _build_singles(
        self, rows, lengths, timestamps, id_list, offset
    ) -> List[AssembledMessage]:
        """Messages + per-stream accounting for rows already proven to be
        clean single frames on idle streams.

        Every payload is sliced from the matrix in one mask op (the same
        construction as :func:`bulk_assemble`), and the accounting
        mirrors what the event decoder would have done: one frame in,
        one payload out, per clean SF; BMW additionally latches the
        address byte of each stream's last completed message.
        """
        columns = np.arange(rows.shape[1], dtype=np.int16)
        first = 1 + offset
        blob = rows[
            (columns[None, :] >= first)
            & (columns[None, :] < first + lengths[:, None])
        ].tobytes()
        ends = np.cumsum(lengths)
        starts = ends - lengths
        bmw = self.transport == TRANSPORT_BMW
        # Bulk tolist() first: per-element numpy scalar indexing would
        # dominate the whole fast path at 5-figure chunk volumes.
        address_list = rows[:, 0].tolist() if bmw else [None] * len(id_list)
        built = [
            AssembledMessage(blob[start:end], can_id, t, t, 1, address)
            for start, end, can_id, t, address in zip(
                starts.tolist(),
                ends.tolist(),
                id_list,
                timestamps.tolist(),
                address_list,
            )
        ]
        for can_id, count in Counter(id_list).items():
            state = self._streams.get(can_id)
            if state is None:
                state = self._streams[can_id] = _StreamState(
                    self.transport, self.hardening
                )
            state.reassembler.stats.frames += count
            state.reassembler.stats.payloads += count
        if bmw:
            latest = dict(zip(id_list, address_list))  # last occurrence wins
            for can_id, address in latest.items():
                reassembler = self._streams[can_id].reassembler
                reassembler.current_address = address
                reassembler.last_address = address
        self.diagnostics.frames += len(built)
        return built

    def feed_chunk(self, frames) -> List[AssembledMessage]:
        """Screen and decode a batch of frames; return completed payloads.

        Semantically identical to calling :meth:`feed` per frame — same
        messages, same diagnostics, same decoder state afterwards — but
        streams consisting solely of well-formed single frames are sliced
        straight out of a :class:`FrameArrays` payload matrix (the
        :func:`bulk_assemble` fast path applied incrementally).  A stream
        is only eligible when its decoder holds no partial message at the
        chunk boundary; anything mid-reassembly, malformed, or multi-frame
        falls back to the event decoders frame by frame, preserving the
        global completion/detail order byte for byte.

        ``frames`` is either an iterable of :class:`CanFrame` or an
        already-columnar :class:`FrameArrays` (the binary wire's batch
        decode), in which case no per-frame conversion happens at all.
        """
        arrays = frames if isinstance(frames, FrameArrays) else None
        if arrays is None:
            frames = list(frames)
        # Hardened assembly stays on the per-frame path: the columnar
        # screen silently discards the very control frames hardened
        # detection classifies, and safety beats slicing throughput here.
        if (
            self.transport not in (TRANSPORT_ISOTP, TRANSPORT_BMW)
            or not HAVE_NUMPY
            or self.hardening is not None
            or len(frames) < MIN_CHUNK_FRAMES
        ):
            completed: List[AssembledMessage] = []
            for frame in arrays.frames if arrays is not None else frames:
                completed.extend(self.feed(frame))
            return completed

        if arrays is None:
            arrays = FrameArrays.from_frames(frames)
        offset = 1 if self.transport == TRANSPORT_BMW else 0
        kept = np.flatnonzero(screen_mask(arrays, self.transport))
        if not kept.size:
            return []
        ids = arrays.can_ids[kept]
        pci = arrays.payloads[kept, offset]
        lengths = (pci & 0x0F).astype(np.int16)
        sf_ok = (
            ((pci >> 4) == PciType.SINGLE)
            & (lengths >= 1)
            & (lengths <= SF_MAX_PAYLOAD)
            & (lengths <= arrays.dlcs[kept] - 1 - offset)
        )

        # The typical live chunk is nothing but clean single frames on
        # idle streams; prove that with one reduction and a set lookup
        # and skip the per-stream grouping machinery entirely.
        if bool(sf_ok.all()):
            id_list = ids.tolist()
            if all(self._stream_idle(can_id) for can_id in set(id_list)):
                built = self._build_singles(
                    arrays.payloads[kept],
                    lengths,
                    arrays.timestamps[kept],
                    id_list,
                    offset,
                )
                self._messages.extend(built)
                return built

        unique_ids, inverse = np.unique(ids, return_inverse=True)
        clean = np.ones(len(unique_ids), dtype=bool)
        np.logical_and.at(clean, inverse, sf_ok)
        # A stream mid-reassembly at the chunk boundary (buffered frames,
        # or a resync that re-anchored the timing window) must keep using
        # its event decoder even if this chunk's frames are all clean SFs.
        for index, can_id in enumerate(unique_ids):
            if not self._stream_idle(int(can_id)):
                clean[index] = False

        fast = clean[inverse]
        fast_positions = np.flatnonzero(fast)
        if not fast_positions.size:
            completed = []
            for position in kept:
                completed.extend(self.feed(arrays.frames[int(position)]))
            return completed

        built = self._build_singles(
            arrays.payloads[kept[fast_positions]],
            lengths[fast_positions],
            arrays.timestamps[kept[fast_positions]],
            ids[fast_positions].tolist(),
            offset,
        )
        if fast.all():
            self._messages.extend(built)
            return built
        # Mixed chunk: walk kept rows in order so fallback completions and
        # detail records interleave with fast-path messages exactly as the
        # per-frame path would have produced them.
        completed = []
        next_fast = 0
        for row, position in enumerate(kept):
            if fast[row]:
                message = built[next_fast]
                next_fast += 1
                self._messages.append(message)
                completed.append(message)
            else:
                completed.extend(self.feed(arrays.frames[int(position)]))
        return completed

    def finish(self) -> Tuple[List[AssembledMessage], DecodeDiagnostics]:
        """Close the stream: sort messages, fold per-stream accounting.

        Idempotent — a second call returns the same objects without
        re-merging stats.
        """
        if not self._finished:
            self._finished = True
            self._messages.sort(key=lambda m: m.t_last)
            tracer = get_active()
            for can_id, state in sorted(self._streams.items()):
                stats = state.reassembler.stats
                self.diagnostics.streams[can_id] = stats
                self.diagnostics.stats.merge(stats)
                if tracer.enabled:
                    with tracer.span(
                        "decode_stream",
                        can_id=f"{can_id:#x}",
                        decoder=state.reassembler.KIND,
                    ) as span:
                        span.set(
                            frames=stats.frames,
                            payloads=stats.payloads,
                            errors=stats.errors,
                            resyncs=stats.resyncs,
                        )
            self.diagnostics.messages = len(self._messages)
        return self._messages, self.diagnostics


class _DetailCollector:
    """Position-tagged stand-in for :class:`DecodeDiagnostics` details.

    The bulk path decodes fallback streams one stream at a time, but the
    event path records error/resync details in global frame order across
    all streams.  Collecting ``(kept_position, ...)`` tuples and sorting
    afterwards reproduces that order exactly.
    """

    def __init__(self) -> None:
        self.items: List[Tuple[int, int, str, str]] = []
        self.position = 0

    def record_detail(self, can_id: int, kind: str, detail: str) -> None:
        self.items.append((self.position, can_id, kind, detail))


def bulk_assemble(
    frames: List[CanFrame], transport: str
) -> Optional[Tuple[List[AssembledMessage], DecodeDiagnostics]]:
    """Vectorised decode of a whole capture; ``None`` when inapplicable.

    The fast path turns the capture into a :class:`FrameArrays` columnar
    view, screens it with one mask, and proves per CAN id that a stream
    consists solely of well-formed single frames — in which case every
    payload is sliced straight out of the payload matrix with no decoder
    state machine.  Streams with multi-frame traffic or any malformed
    frame (the noisy/resync case) are replayed through the event
    decoders, so output is byte-identical to
    :func:`assemble_with_diagnostics`'s event path on every input.

    VW TP 2.0 (stateful screening, no length field) and numpy-less hosts
    return ``None``: use the event path.
    """
    if transport not in (TRANSPORT_ISOTP, TRANSPORT_BMW) or not HAVE_NUMPY:
        return None
    diagnostics = DecodeDiagnostics(transport=transport)
    arrays = FrameArrays.from_frames(frames)
    if not len(arrays):
        return [], diagnostics
    offset = 1 if transport == TRANSPORT_BMW else 0
    kept = np.flatnonzero(screen_mask(arrays, transport))
    diagnostics.frames = int(kept.size)
    if not kept.size:
        return [], diagnostics

    ids = arrays.can_ids[kept]
    pci = arrays.payloads[kept, offset]
    lengths = (pci & 0x0F).astype(np.int16)
    # A valid SF in the event decoder: PCI nibble 0, length 1..7, and the
    # (BMW: address-stripped) data field long enough to hold the payload.
    sf_ok = (
        ((pci >> 4) == PciType.SINGLE)
        & (lengths >= 1)
        & (lengths <= SF_MAX_PAYLOAD)
        & (lengths <= arrays.dlcs[kept] - 1 - offset)
    )
    unique_ids, inverse = np.unique(ids, return_inverse=True)
    clean = np.ones(len(unique_ids), dtype=bool)
    np.logical_and.at(clean, inverse, sf_ok)

    tagged: List[Tuple[int, AssembledMessage]] = []
    details: List[Tuple[int, int, str, str]] = []

    # Clean streams: every payload sliced from the matrix in one mask op.
    bulk = clean[inverse]
    bulk_positions = np.flatnonzero(bulk)
    if bulk_positions.size:
        rows = arrays.payloads[kept[bulk_positions]]
        columns = np.arange(rows.shape[1], dtype=np.int16)
        first = 1 + offset
        blob = rows[
            (columns[None, :] >= first)
            & (columns[None, :] < first + lengths[bulk_positions, None])
        ].tobytes()
        ends = np.cumsum(lengths[bulk_positions])
        starts = ends - lengths[bulk_positions]
        timestamps = arrays.timestamps[kept[bulk_positions]]
        addresses = rows[:, 0] if transport == TRANSPORT_BMW else None
        for j, position in enumerate(bulk_positions):
            tagged.append(
                (
                    int(position),
                    AssembledMessage(
                        payload=blob[starts[j] : ends[j]],
                        can_id=int(ids[position]),
                        t_first=float(timestamps[j]),
                        t_last=float(timestamps[j]),
                        n_frames=1,
                        ecu_address=(
                            int(addresses[j]) if addresses is not None else None
                        ),
                    ),
                )
            )
    for index in np.flatnonzero(clean):
        count = int((inverse == index).sum())
        diagnostics.streams[int(unique_ids[index])] = DecoderStats(
            frames=count, payloads=count
        )

    # Noisy/multi-frame streams: replay through the event decoders.
    for index in np.flatnonzero(~clean):
        state = _StreamState(transport)
        collector = _DetailCollector()
        for position in np.flatnonzero(inverse == index):
            collector.position = int(position)
            for message in state.feed(arrays.frames[int(kept[position])], collector):
                tagged.append((int(position), message))
        details.extend(collector.items)
        diagnostics.streams[int(unique_ids[index])] = state.reassembler.stats

    # Merge per-stream accounting and restore global event ordering.
    diagnostics.streams = dict(sorted(diagnostics.streams.items()))
    for stats in diagnostics.streams.values():
        diagnostics.stats.merge(stats)
    for __, can_id, kind, detail in sorted(details):
        diagnostics.record_detail(can_id, kind, detail)
    # Completion order is the order of the completing frame, so a sort on
    # (t_last, kept position) equals the event path's stable t_last sort.
    tagged.sort(key=lambda item: (item[1].t_last, item[0]))
    messages = [message for __, message in tagged]
    diagnostics.messages = len(messages)
    return messages, diagnostics


def assemble_with_diagnostics(
    frames: Iterable[CanFrame],
    transport: str = "",
    hardening: Optional[HardeningPolicy] = None,
) -> Tuple[List[AssembledMessage], DecodeDiagnostics]:
    """Screen and reassemble a capture, returning decode diagnostics too.

    Frames are demultiplexed by CAN id (each id is one direction of one
    conversation) and fed to a per-id reassembler in timestamp order.  The
    returned :class:`DecodeDiagnostics` reports how much of the capture
    survived decoding — on a clean capture it is all zeros except frame and
    message totals.

    Captures on vectorisable transports take :func:`bulk_assemble` (byte
    identical, no per-frame Python) unless tracing is active — per-stream
    ``decode_stream`` spans only exist on the event path.  Hardened
    assembly (``hardening`` set) always runs the event path: the bounded
    speculative decoders and screened-frame classification only exist
    there.
    """
    frames = list(frames)
    transport = transport or detect_transport(frames)
    tracer = get_active()
    if not tracer.enabled and hardening is None:
        bulk = bulk_assemble(frames, transport)
        if bulk is not None:
            return bulk
    # Hardened assembly sees the unscreened stream so the screened-out
    # control frames can still be classified; feed() screens either way.
    screened = screen(frames, transport) if hardening is None else frames
    assembler = StreamAssembler(transport, hardening=hardening)
    with tracer.span("decode", transport=transport, frames=len(screened)):
        for frame in screened:
            assembler.feed(frame)
        return assembler.finish()


def assemble(frames: Iterable[CanFrame], transport: str = "") -> List[AssembledMessage]:
    """Screen and reassemble a capture into diagnostic payloads.

    Shorthand for :func:`assemble_with_diagnostics` when the caller does
    not need capture-quality accounting.
    """
    messages, __ = assemble_with_diagnostics(frames, transport)
    return messages


def multiframe_statistics(frames: Iterable[CanFrame], transport: str = "") -> Dict[str, int]:
    """Tab. 9's frame mix: single vs multi-frame vs control frames.

    For ISO-TP: ``single`` = SF, ``multi`` = FF + CF, ``control`` = FC.
    For VW TP 2.0: ``single`` is reported as the *last* packets (complete
    after this frame), ``multi`` the continuation packets — matching how
    the paper counts "needs to wait for the next frames" (75.2 %).
    """
    from ..transport.vwtp import VwTpFrameKind, classify_vwtp_frame, is_last_packet

    frames = list(frames)
    transport = transport or detect_transport(frames)
    stats = {"single": 0, "multi": 0, "control": 0, "total": 0}
    for frame in frames:
        stats["total"] += 1
        if transport == TRANSPORT_VWTP:
            kind = classify_vwtp_frame(frame)
            if kind != VwTpFrameKind.DATA:
                stats["control"] += 1
            elif is_last_packet(frame):
                stats["single"] += 1
            else:
                stats["multi"] += 1
            continue
        offset = 1 if transport == TRANSPORT_BMW else 0
        if len(frame.data) <= offset:
            stats["control"] += 1
            continue
        nibble = frame.data[offset] >> 4
        if nibble == PciType.SINGLE:
            stats["single"] += 1
        elif nibble in (PciType.FIRST, PciType.CONSECUTIVE):
            stats["multi"] += 1
        else:
            stats["control"] += 1
    return stats
