"""READ / LibreCAN-style CAN frame analysis (the §4.4 comparison target).

READ (Marchetti & Stabili, IEEE TIFS 2018) reverse engineers *broadcast*
CAN frames: for each CAN id it computes per-bit flip rates over consecutive
frames and segments the 64-bit data field into physical-signal, counter and
CRC fields.  LibreCAN (Pesé et al., CCS 2019) then matches extracted signal
fields to reference signals (OBD-II readings) by correlation.

The paper's §4.4 point, reproduced by the benches: these techniques assume
one frame == one message, so they cannot handle diagnostic traffic where a
message spans several transport-layer frames — the extracted "fields" cut
across PCI bytes and payload chunks and correlate with nothing.

This is a faithful re-implementation of the published heuristics at the
level of detail the comparison needs:

* bit-flip *rate* and *magnitude* arrays (READ §IV-A),
* field segmentation on magnitude discontinuities,
* field classification: CRC (uniform ~0.5 flip rates), counter (flip rate
  doubling bit over bit, LSB flipping almost every frame), physical
  signals (monotone rate increase toward the LSB), constants,
* LibreCAN-style best-correlation matching against reference series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..can import CanFrame

N_BITS = 64


@dataclass(frozen=True)
class BitStatistics:
    """Per-bit flip counts for one CAN id's frame stream."""

    flip_rate: Tuple[float, ...]  # fraction of consecutive pairs that flip
    magnitude: Tuple[float, ...]  # READ's log10-scaled rates
    n_frames: int


def bit_statistics(frames: Sequence[CanFrame]) -> BitStatistics:
    """Compute flip rates over consecutive frames of one CAN id."""
    if len(frames) < 2:
        raise ValueError("need at least two frames to compute flip rates")
    flips = [0] * N_BITS
    previous = None
    pairs = 0
    for frame in frames:
        data = int.from_bytes(frame.data.ljust(8, b"\x00"), "big")
        if previous is not None:
            pairs += 1
            changed = data ^ previous
            for bit in range(N_BITS):
                if changed & (1 << (N_BITS - 1 - bit)):
                    flips[bit] += 1
        previous = data
    rates = tuple(count / pairs for count in flips)
    magnitudes = tuple(
        math.floor(math.log10(rate)) if rate > 0 else -10 for rate in rates
    )
    return BitStatistics(rates, magnitudes, len(frames))


@dataclass(frozen=True)
class ReadField:
    """One field READ identified in a frame layout."""

    start_bit: int
    length: int
    kind: str  # "physical" | "counter" | "crc" | "constant"

    @property
    def end_bit(self) -> int:
        return self.start_bit + self.length

    def extract(self, frame: CanFrame) -> int:
        data = int.from_bytes(frame.data.ljust(8, b"\x00"), "big")
        shift = N_BITS - self.end_bit
        return (data >> shift) & ((1 << self.length) - 1)


def _is_counter(rates: Sequence[float], start: int, length: int) -> bool:
    """Counters: each bit flips ~half as often as the next, LSB ~always."""
    if length < 2:
        return False
    segment = rates[start : start + length]
    if segment[-1] < 0.9:
        return False
    for left, right in zip(segment, segment[1:]):
        if left > right * 0.75 + 1e-9:
            return False
    return True


def _is_crc(rates: Sequence[float], start: int, length: int) -> bool:
    """CRCs: every bit flips at roughly one half."""
    segment = rates[start : start + length]
    return length >= 8 and all(0.3 <= rate <= 0.7 for rate in segment)


def segment_fields(statistics: BitStatistics) -> List[ReadField]:
    """READ's segmentation: split on magnitude discontinuities.

    Scanning MSB→LSB, a *physical* signal's flip rate never decreases (the
    LSB moves fastest); a drop in magnitude therefore starts a new field.
    Zero-rate runs are constants.
    """
    rates = statistics.flip_rate
    magnitudes = statistics.magnitude
    fields: List[ReadField] = []
    start = 0
    for bit in range(1, N_BITS + 1):
        boundary = bit == N_BITS or (
            (magnitudes[bit] < magnitudes[bit - 1])
            or (rates[bit] == 0.0) != (rates[bit - 1] == 0.0)
        )
        if not boundary:
            continue
        length = bit - start
        if all(rate == 0.0 for rate in rates[start:bit]):
            kind = "constant"
        elif _is_crc(rates, start, length):
            kind = "crc"
        elif _is_counter(rates, start, length):
            kind = "counter"
        else:
            kind = "physical"
        fields.append(ReadField(start, length, kind))
        start = bit
    return fields


def read_analysis(frames: Sequence[CanFrame]) -> List[ReadField]:
    """Full READ pass over one CAN id's frames."""
    return segment_fields(bit_statistics(frames))


# ------------------------------------------------------------------ LibreCAN


@dataclass(frozen=True)
class FieldMatch:
    """One extracted field matched against a reference signal."""

    field: ReadField
    reference: str
    correlation: float


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = min(len(xs), len(ys))
    if n < 4:
        return 0.0
    xs = list(xs[:n])
    ys = list(ys[:n])
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 1e-12 or var_y <= 1e-12:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def librecan_match(
    frames: Sequence[CanFrame],
    fields: Sequence[ReadField],
    references: Dict[str, Sequence[Tuple[float, float]]],
    min_correlation: float = 0.8,
) -> List[FieldMatch]:
    """Phase-1 LibreCAN: correlate physical fields with reference signals.

    ``references`` maps a signal name to its (t, value) series (in the
    original system these come from simultaneous OBD-II polling).  Field
    values are sampled at frame times and paired with the nearest
    reference sample.
    """
    matches: List[FieldMatch] = []
    for read_field in fields:
        if read_field.kind != "physical":
            continue
        series = [(f.timestamp, float(read_field.extract(f))) for f in frames]
        best: Optional[FieldMatch] = None
        for name, reference in references.items():
            paired_field: List[float] = []
            paired_ref: List[float] = []
            ref_index = 0
            for t, value in series:
                while (
                    ref_index + 1 < len(reference)
                    and abs(reference[ref_index + 1][0] - t)
                    <= abs(reference[ref_index][0] - t)
                ):
                    ref_index += 1
                if reference and abs(reference[ref_index][0] - t) <= 0.5:
                    paired_field.append(value)
                    paired_ref.append(reference[ref_index][1])
            correlation = abs(_pearson(paired_field, paired_ref))
            if best is None or correlation > best.correlation:
                best = FieldMatch(read_field, name, correlation)
        if best is not None and best.correlation >= min_correlation:
            matches.append(best)
    return matches
