"""Baseline formula-inference algorithms (§4.4).

LibreCAN-style alternatives to genetic programming:

* **linear regression** — ``Y = β0*X0 + β1*X1 + β2`` by least squares;
  can only represent linear relations, so products and quadratics are
  structurally out of reach;
* **polynomial curve fitting** — degree-2 with cross terms
  (``1, Xi, Xi², Xi*Xj``); can represent products but, fitted with L2 on
  noisy data, tends to smear weight across all six terms (the paper's
  Engine-Speed example).

Both return the same :class:`InferredFormula` record as GP so the
verification and benches treat all three algorithms uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..formulas import ExpressionFormula
from .response_analysis import InferredFormula, PairedDataset


def _design_linear(x: np.ndarray) -> Tuple[np.ndarray, List[str]]:
    n, k = x.shape
    columns = [x[:, i] for i in range(k)] + [np.ones(n)]
    names = [f"X{i}" for i in range(k)] + ["1"]
    return np.stack(columns, axis=1), names


def _design_poly2(x: np.ndarray) -> Tuple[np.ndarray, List[str]]:
    n, k = x.shape
    columns = [np.ones(n)]
    names = ["1"]
    for i in range(k):
        columns.append(x[:, i])
        names.append(f"X{i}")
    for i in range(k):
        columns.append(x[:, i] ** 2)
        names.append(f"X{i}^2")
    for i in range(k):
        for j in range(i + 1, k):
            columns.append(x[:, i] * x[:, j])
            names.append(f"X{i}*X{j}")
    return np.stack(columns, axis=1), names


def _fit(
    dataset: PairedDataset, design_fn, label: str
) -> Optional[InferredFormula]:
    if len(dataset) < 4:
        return None
    x = np.asarray(dataset.x_rows, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    y = np.asarray(dataset.y_values, dtype=float)
    design, names = design_fn(x)
    if len(dataset) < design.shape[1]:
        return None
    try:
        coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(coefficients)):
        return None
    predictions = design @ coefficients
    mae = float(np.mean(np.abs(predictions - y)))
    arity = x.shape[1]
    coefficient_list = [float(c) for c in coefficients]

    def evaluate(xs: Sequence[float], _coeffs=coefficient_list, _fn=design_fn) -> float:
        row = np.asarray(xs, dtype=float)[None, :]
        design_row, __ = _fn(row)
        return float(design_row[0] @ np.asarray(_coeffs))

    terms = [
        f"{coefficient:+.4g}*{name}" if name != "1" else f"{coefficient:+.4g}"
        for coefficient, name in zip(coefficient_list, names)
        if abs(coefficient) > 1e-10
    ]
    description = "Y = " + " ".join(terms) if terms else "Y = 0"
    return InferredFormula(
        formula=ExpressionFormula(evaluate, arity=arity, description=description),
        description=description,
        fitness=mae,
        interpretation=label,
        n_samples=len(dataset),
        generations=0,
    )


def linear_regression(dataset: PairedDataset) -> Optional[InferredFormula]:
    """Fit ``Y = β·X + c`` by ordinary least squares."""
    return _fit(dataset, _design_linear, "linear")


def polynomial_fit(dataset: PairedDataset) -> Optional[InferredFormula]:
    """Fit a full degree-2 polynomial (with cross terms)."""
    return _fit(dataset, _design_poly2, "poly2")
