#!/usr/bin/env python3
"""Diff two benchmark-artifact sets; exit non-zero on regression.

CI's regression gate::

    python scripts/bench_compare.py benchmarks/results/baseline benchmarks/results

Both arguments are directories of ``BENCH_<name>.json`` artifacts written
by ``benchmarks/bench_io.py``.  Comparison policy, per metric:

* **identity metrics** (any unit outside the timing set ``s``/``ms``/
  ``us``/``x`` — counts, ratios, precisions) must match exactly; any
  difference is a hard failure.  These are deterministic reproduction
  numbers: a changed precision is a behaviour change, not noise.
* **timing metrics** regress only beyond ``--rel-tol``/``--abs-tol``, and
  even then only *warn* by default — CI runners are too noisy to gate
  merges on wall-clock.  ``--fail-on-timing`` upgrades timing regressions
  to failures for controlled environments.
* a metric (or a whole bench) present in the baseline but missing from
  the current set is a failure — coverage must not silently shrink; new
  metrics and new benches are reported as notes.
* ``NaN`` equals ``NaN`` (a knowingly-unavailable number stays
  unavailable); ``NaN`` on one side only is a failure.
* ``--floor METRIC=VALUE`` (repeatable) imposes a hard minimum on a
  *current* metric, independent of the baseline and of timing tolerance:
  a current value below the floor, missing, or NaN is a failure even
  though timing metrics otherwise only warn.  ``METRIC`` is either a bare
  metric name (applies to every bench exposing it; at least one must) or
  ``bench.metric`` to pin one artifact.  This is how CI asserts "the
  parallel backend must actually win" without gating on noisy ratios.

Exit codes: 0 clean, 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_io import TIMING_UNITS, load_artifact_dir  # noqa: E402

#: Finding severities, in gate order.
FAIL = "FAIL"
WARN = "WARN"
NOTE = "NOTE"
OK = "OK"


@dataclass
class Finding:
    severity: str
    bench: str
    metric: str
    message: str

    def __str__(self) -> str:
        where = f"{self.bench}.{self.metric}" if self.metric else self.bench
        return f"[{self.severity}] {where}: {self.message}"


def _is_timing(unit: str) -> bool:
    return unit in TIMING_UNITS


def _relative_delta(base: float, cur: float) -> float:
    if base == 0:
        return math.inf if cur != 0 else 0.0
    return abs(cur - base) / abs(base)


def compare_metric(
    bench: str,
    metric: str,
    unit: str,
    base: float,
    cur: float,
    rel_tol: float,
    abs_tol: float,
) -> Finding:
    """Classify one metric's baseline→current movement."""
    base_nan, cur_nan = _isnan(base), _isnan(cur)
    if base_nan and cur_nan:
        return Finding(OK, bench, metric, "NaN == NaN")
    if base_nan != cur_nan:
        return Finding(
            FAIL, bench, metric, f"NaN mismatch: baseline={base!r} current={cur!r}"
        )
    if _is_timing(unit):
        if abs(cur - base) <= abs_tol or _relative_delta(base, cur) <= rel_tol:
            return Finding(OK, bench, metric, f"{base} -> {cur} ({unit}, within tolerance)")
        return Finding(
            WARN,
            bench,
            metric,
            f"timing moved {base} -> {cur} {unit} "
            f"(rel {_relative_delta(base, cur):.1%} > {rel_tol:.1%})",
        )
    if base == cur:
        return Finding(OK, bench, metric, f"{base} == {cur}")
    return Finding(
        FAIL, bench, metric, f"identity metric changed: {base} -> {cur} ({unit})"
    )


def _isnan(value: float) -> bool:
    try:
        return math.isnan(value)
    except TypeError:
        return False


def compare_sets(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    rel_tol: float = 0.25,
    abs_tol: float = 0.0,
) -> List[Finding]:
    """Compare two artifact sets (bench name -> artifact dict)."""
    findings: List[Finding] = []
    for bench in sorted(set(baseline) | set(current)):
        if bench not in current:
            findings.append(Finding(FAIL, bench, "", "bench missing from current set"))
            continue
        if bench not in baseline:
            findings.append(Finding(NOTE, bench, "", "new bench (no baseline)"))
            continue
        base_art, cur_art = baseline[bench], current[bench]
        if base_art["config_fingerprint"] != cur_art["config_fingerprint"]:
            findings.append(
                Finding(
                    NOTE,
                    bench,
                    "",
                    "config fingerprint changed "
                    f"({base_art['config_fingerprint']} -> "
                    f"{cur_art['config_fingerprint']}); metrics may not be comparable",
                )
            )
        base_metrics, cur_metrics = base_art["metrics"], cur_art["metrics"]
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            if metric not in cur_metrics:
                findings.append(
                    Finding(FAIL, bench, metric, "metric missing from current artifact")
                )
                continue
            if metric not in base_metrics:
                findings.append(Finding(NOTE, bench, metric, "new metric (no baseline)"))
                continue
            unit = cur_art["units"].get(metric, base_art["units"].get(metric, ""))
            findings.append(
                compare_metric(
                    bench,
                    metric,
                    unit,
                    base_metrics[metric],
                    cur_metrics[metric],
                    rel_tol,
                    abs_tol,
                )
            )
    return findings


def parse_floor(spec: str):
    """``[bench.]metric=value`` -> ``(bench or None, metric, value)``.

    Raises ``ValueError`` on a malformed spec (no ``=``, empty metric,
    non-numeric value).
    """
    name, sep, raw = spec.partition("=")
    if not sep or not name:
        raise ValueError(f"floor must look like METRIC=VALUE: {spec!r}")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"floor value is not a number: {spec!r}") from None
    if math.isnan(value):
        raise ValueError(f"floor value cannot be NaN: {spec!r}")
    bench, dot, metric = name.partition(".")
    if not dot:
        bench, metric = None, name
    if not metric:
        raise ValueError(f"floor metric name is empty: {spec!r}")
    return bench, metric, value


def check_floors(current: Dict[str, dict], floors) -> List[Finding]:
    """Hard minimums on current metrics: below, missing, or NaN is FAIL."""
    findings: List[Finding] = []
    for bench, metric, value in floors:
        targets = [bench] if bench is not None else sorted(
            name for name, art in current.items() if metric in art["metrics"]
        )
        if not targets or (bench is not None and bench not in current):
            findings.append(
                Finding(
                    FAIL,
                    bench or "*",
                    metric,
                    f"floor {value} set but no current artifact exposes the metric",
                )
            )
            continue
        for name in targets:
            cur = current[name]["metrics"].get(metric)
            if cur is None:
                findings.append(
                    Finding(FAIL, name, metric, f"floor {value} set but metric missing")
                )
            elif _isnan(cur):
                findings.append(
                    Finding(FAIL, name, metric, f"floor {value} set but value is NaN")
                )
            elif cur < value:
                findings.append(
                    Finding(FAIL, name, metric, f"{cur} below floor {value}")
                )
            else:
                findings.append(
                    Finding(OK, name, metric, f"{cur} >= floor {value}")
                )
    return findings


def gate(findings: List[Finding], fail_on_timing: bool = False) -> int:
    """Exit code for a finding list: 1 on any FAIL (or WARN when upgraded)."""
    severities = {f.severity for f in findings}
    if FAIL in severities:
        return 1
    if fail_on_timing and WARN in severities:
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="directory of baseline BENCH_*.json artifacts")
    parser.add_argument("current", help="directory of freshly produced artifacts")
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.25,
        help="relative tolerance for timing metrics (default 0.25)",
    )
    parser.add_argument(
        "--abs-tol",
        type=float,
        default=0.0,
        help="absolute tolerance for timing metrics, in the metric's unit",
    )
    parser.add_argument(
        "--fail-on-timing",
        action="store_true",
        help="treat out-of-tolerance timing movement as a failure, not a warning",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="METRIC=VALUE",
        help="hard minimum for a current metric (repeatable); below, missing "
        "or NaN fails the gate even for timing-unit metrics.  Prefix with "
        "bench. to pin one artifact, e.g. gp_perf.process_speedup=1.0",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only WARN/FAIL findings"
    )
    args = parser.parse_args(argv)

    try:
        floors = [parse_floor(spec) for spec in args.floor]
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    for path in (args.baseline, args.current):
        if not Path(path).is_dir():
            print(f"not a directory: {path}", file=sys.stderr)
            return 2
    try:
        baseline = load_artifact_dir(args.baseline)
        current = load_artifact_dir(args.current)
    except ValueError as error:
        print(f"bad artifact: {error}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"no BENCH_*.json artifacts in {args.baseline}", file=sys.stderr)
        return 2

    findings = compare_sets(baseline, current, rel_tol=args.rel_tol, abs_tol=args.abs_tol)
    findings.extend(check_floors(current, floors))
    for finding in findings:
        if args.quiet and finding.severity == OK:
            continue
        print(finding)
    code = gate(findings, fail_on_timing=args.fail_on_timing)
    n_fail = sum(1 for f in findings if f.severity == FAIL)
    n_warn = sum(1 for f in findings if f.severity == WARN)
    print(
        f"\n{len(findings)} finding(s): {n_fail} fail, {n_warn} warn -> "
        f"{'REGRESSION' if code else 'OK'}"
    )
    return code


if __name__ == "__main__":
    raise SystemExit(main())
